"""Disjunctive multiplicity schemas (DMS) and document validation.

A DMS assigns to every label a :class:`~repro.schema.dme.DME` constraining
the children-label multiset of nodes carrying that label, plus a root
label.  A document is valid when its root carries the root label and every
node's children satisfy the node's expression.  The *disjunction-free*
restriction (``MS``) has single-label atoms only; the PTIME dependency-graph
analyses of :mod:`repro.schema.query_analysis` are exact for it.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping

from repro.errors import SchemaError, SchemaViolation
from repro.schema.dme import DME, Atom, parse_dme
from repro.schema.multiplicity import Multiplicity
from repro.xmltree.tree import XNode, XTree


class DMS:
    """A disjunctive multiplicity schema: root label + per-label expression.

    Labels mentioned inside expressions but without a rule of their own
    implicitly map to the empty expression (leaves).
    """

    def __init__(self, root: str, rules: Mapping[str, DME]) -> None:
        if not root:
            raise SchemaError("schema root label must be non-empty")
        self.root = root
        self.rules: dict[str, DME] = dict(rules)
        for label in sorted(self._mentioned_labels()):
            self.rules.setdefault(label, DME())
        if root not in self.rules:
            self.rules[root] = DME()

    def _mentioned_labels(self) -> set[str]:
        out: set[str] = set()
        for expr in self.rules.values():
            out.update(expr.alphabet)
        return out

    # ------------------------------------------------------------------
    @property
    def alphabet(self) -> frozenset[str]:
        return frozenset(self.rules) | {self.root}

    @property
    def is_disjunction_free(self) -> bool:
        return all(expr.is_disjunction_free for expr in self.rules.values())

    def expression(self, label: str) -> DME:
        try:
            return self.rules[label]
        except KeyError:
            raise SchemaError(f"label {label!r} is not in the schema") from None

    def allowed_children(self, label: str) -> frozenset[str]:
        return self.expression(label).alphabet

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, tree: XTree) -> None:
        """Raise :class:`~repro.errors.SchemaViolation` on the first problem."""
        if tree.root.label != self.root:
            raise SchemaViolation(
                f"root is {tree.root.label!r}, schema expects {self.root!r}"
            )
        for n in tree.nodes():
            if n.label not in self.rules:
                raise SchemaViolation(f"unknown label {n.label!r}")
            counts = Counter(c.label for c in n.children)
            expr = self.rules[n.label]
            if not expr.admits(counts):
                raise SchemaViolation(
                    f"children of a {n.label!r} node violate {expr}: "
                    f"{dict(counts)}"
                )

    def accepts(self, tree: XTree) -> bool:
        """Boolean membership test."""
        try:
            self.validate(tree)
        except SchemaViolation:
            return False
        return True

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DMS):
            return NotImplemented
        return self.root == other.root and self.rules == other.rules

    def __hash__(self) -> int:
        return hash((self.root, frozenset(self.rules.items())))

    def __str__(self) -> str:
        lines = [f"root: {self.root}"]
        lines.extend(
            f"{label} -> {expr}"
            for label, expr in sorted(self.rules.items())
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<DMS root={self.root!r} labels={len(self.rules)}>"

    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, text: str) -> "DMS":
        """Parse the textual format printed by ``str()``::

            root: site
            site -> regions || people?
            regions -> (africa|asia)*
        """
        root: str | None = None
        rules: dict[str, DME] = {}
        for raw_line in text.strip().splitlines():
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("root:"):
                root = line.split(":", 1)[1].strip()
                continue
            if "->" not in line:
                raise SchemaError(f"malformed schema line: {line!r}")
            label, expr_text = line.split("->", 1)
            rules[label.strip()] = parse_dme(expr_text)
        if root is None:
            raise SchemaError("schema text must declare 'root: <label>'")
        return cls(root, rules)


def single(label: str, multiplicity: Multiplicity = Multiplicity.ONE) -> Atom:
    """Convenience: a single-label atom (for building disjunction-free MS)."""
    return Atom(frozenset({label}), multiplicity)


def make_ms(root: str,
            rules: Mapping[str, Iterable[tuple[str, Multiplicity]]]) -> DMS:
    """Build a disjunction-free schema from ``label -> [(child, mult), ...]``."""
    return DMS(root, {
        label: DME(Atom(frozenset({child}), mult) for child, mult in pairs)
        for label, pairs in rules.items()
    })
