"""Label satisfiability, reachability, and schema trimming.

A label is *satisfiable* when some finite tree rooted at it validates: a
required atom whose labels are all unsatisfiable (or a required cycle)
poisons its parent.  Computed as a greatest-to-least fixpoint in PTIME.

*Trimming* rewrites a schema onto its satisfiable, root-reachable core;
containment and the dependency-graph analyses all start by trimming, which
is what keeps them both correct and polynomial.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.schema.dms import DMS


def satisfiable_labels(schema: DMS) -> frozenset[str]:
    """Labels admitting at least one finite valid subtree.

    Least fixpoint: a label is satisfiable once every *required* atom of its
    expression contains some already-satisfiable label (leaves start the
    induction: no atoms, or none required).
    """
    sat: set[str] = set()
    changed = True
    while changed:
        changed = False
        for label, expr in schema.rules.items():
            if label in sat:
                continue
            ok = all(
                (not atom.multiplicity.required)
                or any(x in sat for x in atom.labels)
                for atom in expr.atoms
            )
            if ok:
                sat.add(label)
                changed = True
    return frozenset(sat)


def reachable_labels(schema: DMS,
                     within: frozenset[str] | None = None) -> frozenset[str]:
    """Labels reachable from the root through allowed-children edges.

    ``within`` restricts traversal (pass the satisfiable set to compute the
    useful core).
    """
    allowed = within if within is not None else schema.alphabet
    if schema.root not in allowed:
        return frozenset()
    seen = {schema.root}
    stack = [schema.root]
    while stack:
        label = stack.pop()
        for child in schema.expression(label).alphabet:
            if child in allowed and child not in seen:
                seen.add(child)
                stack.append(child)
    return frozenset(seen)


def is_satisfiable(schema: DMS) -> bool:
    """Does the schema admit at least one valid document?"""
    return schema.root in satisfiable_labels(schema)


def trim(schema: DMS) -> DMS:
    """The equivalent schema over satisfiable, root-reachable labels only.

    Raises :class:`~repro.errors.SchemaError` when the schema is
    unsatisfiable (there is no equivalent trimmed schema to return).
    """
    sat = satisfiable_labels(schema)
    if schema.root not in sat:
        raise SchemaError(
            f"schema is unsatisfiable: root {schema.root!r} admits no "
            "finite valid tree"
        )
    core = reachable_labels(schema, within=sat)
    rules = {}
    for label in core:
        restricted = schema.expression(label).restrict(core)
        # ``restrict`` returns None only when a required atom dies, which
        # cannot happen for satisfiable labels.
        assert restricted is not None, label
        rules[label] = restricted
    return DMS(schema.root, rules)
