"""Static analysis of twig queries against multiplicity schemas.

Three problems from Section 2 of the paper, all via the dependency graph:

* **query satisfiability** — is there a valid document on which the query
  matches?  Decided by embedding the query into the *possible* edges.
  Exact and PTIME for disjunction-free schemas (witness trees for separate
  branches merge label-by-label); for disjunctive schemas the embedding is
  a sound upper approximation (a bounded-width atom shared between two
  branches can make the conjunction unsatisfiable), which is precisely why
  the paper claims PTIME only for the disjunction-free case.

* **query implication** — does *every* valid document satisfy the query
  (as a Boolean pattern)?  Decided by embedding the query into the
  *certain* child groups; exact and PTIME for both schema classes.  This
  powers the schema-aware learner: a filter implied by the schema carries
  no information and can be dropped from the learned query.

* **query containment under a schema** — ``q1 ⊆_S q2``.  coNP-complete
  even for disjunction-free schemas (the paper proves the bound), so the
  implementation searches for a bounded counterexample document.
"""

from __future__ import annotations

import itertools

from repro.schema.dependency_graph import DependencyGraph
from repro.schema.dms import DMS
from repro.twig.ast import Axis, TwigNode, TwigQuery
from repro.twig.semantics import evaluate, matches_boolean
from repro.util.rng import RngLike, make_rng
from repro.xmltree.tree import XTree


def _label_compatible(query_label: str, label: str) -> bool:
    return query_label == "*" or query_label == label


# ---------------------------------------------------------------------------
# Satisfiability (possible embedding)
# ---------------------------------------------------------------------------


def _satisfiable_at(qnode: TwigNode, label: str, graph: DependencyGraph,
                    memo: dict[tuple[int, str], bool]) -> bool:
    key = (id(qnode), label)
    if key in memo:
        return memo[key]
    ok = _label_compatible(qnode.label, label)
    if ok:
        for axis, child in qnode.branches:
            if axis is Axis.CHILD:
                targets = graph.possible[label]
            else:
                targets = graph.reachable(label)
            if not any(_satisfiable_at(child, b, graph, memo)
                       for b in targets):
                ok = False
                break
    memo[key] = ok
    return ok


def query_satisfiable(query: TwigQuery, schema: DMS | DependencyGraph) -> bool:
    """Can the query match some valid document?

    Exact (and PTIME) for disjunction-free schemas; a sound upper
    approximation for disjunctive ones (never reports unsatisfiable for a
    satisfiable query).
    """
    graph = schema if isinstance(schema, DependencyGraph) \
        else DependencyGraph(schema)
    memo: dict[tuple[int, str], bool] = {}
    if query.root_axis is Axis.CHILD:
        return _satisfiable_at(query.root, graph.root, graph, memo)
    candidates = {graph.root} | set(graph.reachable(graph.root))
    return any(_satisfiable_at(query.root, label, graph, memo)
               for label in candidates)


# ---------------------------------------------------------------------------
# Implication (certain embedding)
# ---------------------------------------------------------------------------


class _ImpliedAnalysis:
    """Fixpoint computation of node/descendant certainty.

    ``node_implied(q, a)`` — every valid subtree rooted at label ``a`` has
    the pattern rooted at ``q`` matching at its root.

    ``desc_implied(q, a)`` — every valid subtree rooted at ``a`` has a
    proper descendant at which ``q``'s pattern matches.

    Both are least fixpoints: certainty must be grounded in required atoms
    (sound for finite trees because required structures cannot cycle in a
    trimmed schema).
    """

    def __init__(self, graph: DependencyGraph) -> None:
        self.graph = graph
        self.node_true: set[tuple[int, str]] = set()
        self.desc_true: set[tuple[int, str]] = set()

    def run(self, query_nodes: list[TwigNode]) -> None:
        changed = True
        while changed:
            changed = False
            for q in query_nodes:
                for a in self.graph.labels:
                    if (id(q), a) not in self.node_true \
                            and self._node_check(q, a):
                        self.node_true.add((id(q), a))
                        changed = True
                    if (id(q), a) not in self.desc_true \
                            and self._desc_check(q, a):
                        self.desc_true.add((id(q), a))
                        changed = True

    def _node_check(self, q: TwigNode, a: str) -> bool:
        if not _label_compatible(q.label, a):
            return False
        for axis, child in q.branches:
            if axis is Axis.CHILD:
                if not self._certain_child(child, a):
                    return False
            else:
                if (id(child), a) not in self.desc_true:
                    return False
        return True

    def _certain_child(self, q: TwigNode, a: str) -> bool:
        """Some required atom of E(a) forces a child matching ``q``."""
        return any(
            all((id(q), x) in self.node_true for x in group)
            for group in self.graph.certain_groups[a]
        )

    def _desc_check(self, q: TwigNode, a: str) -> bool:
        """Some required atom forces a child that matches ``q`` or
        certainly contains a matching descendant."""
        return any(
            all(
                (id(q), x) in self.node_true or (id(q), x) in self.desc_true
                for x in group
            )
            for group in self.graph.certain_groups[a]
        )


def query_implied(query: TwigQuery, schema: DMS | DependencyGraph) -> bool:
    """Does every valid document satisfy the query (Boolean semantics)?

    Exact and PTIME for both disjunction-free and disjunctive schemas.
    """
    graph = schema if isinstance(schema, DependencyGraph) \
        else DependencyGraph(schema)
    analysis = _ImpliedAnalysis(graph)
    analysis.run(list(query.nodes()))
    root_key = (id(query.root), graph.root)
    if query.root_axis is Axis.CHILD:
        return root_key in analysis.node_true
    return root_key in analysis.node_true or root_key in analysis.desc_true


def filter_implied_at(schema: DMS | DependencyGraph, label: str,
                      axis: Axis, filter_root: TwigNode) -> bool:
    """Is the branch ``(axis, filter_root)`` implied at every valid node
    labelled ``label``?

    The schema-aware learner's primitive: subtree validity is local in a
    multiplicity schema, so a filter is implied at a node iff it is implied
    at every valid subtree rooted with that node's label.
    """
    graph = schema if isinstance(schema, DependencyGraph) \
        else DependencyGraph(schema)
    if label == "*":
        labels = graph.labels
    elif label in graph.labels:
        labels = frozenset({label})
    else:
        return False
    analysis = _ImpliedAnalysis(graph)
    analysis.run(list(filter_root.iter()))
    if axis is Axis.CHILD:
        return all(analysis._certain_child(filter_root, a) for a in labels)
    return all((id(filter_root), a) in analysis.desc_true for a in labels)


# ---------------------------------------------------------------------------
# Containment under a schema (bounded counterexample search)
# ---------------------------------------------------------------------------


def query_contained_under_schema(
    q1: TwigQuery,
    q2: TwigQuery,
    schema: DMS,
    *,
    max_trees: int = 500,
    max_depth: int = 8,
    random_trees: int = 100,
    extra: int = 1,
    rng: RngLike = None,
) -> tuple[bool, XTree | None]:
    """Bounded test of ``q1 ⊆_S q2``.

    Searches systematically-enumerated and randomly-sampled valid documents
    for a node selected by ``q1`` but not ``q2``.  Returns ``(False,
    counterexample)`` when one is found, else ``(True, None)`` — complete
    only up to the bounds (the problem is coNP-complete; ``extra`` is the
    enumerator's per-atom count headroom over each minimum, and the random
    half of the search probes child counts the enumeration bound misses).
    """
    from repro.errors import SchemaError
    from repro.schema.generation import (
        enumerate_valid_trees,
        generate_valid_tree,
    )

    if extra < 0:
        raise SchemaError("extra must be >= 0")
    r = make_rng(rng)

    def is_counterexample(tree: XTree) -> bool:
        selected2 = set(map(id, evaluate(q2, tree)))
        return any(id(n) not in selected2 for n in evaluate(q1, tree))

    for tree in itertools.chain(
        enumerate_valid_trees(schema, limit=max_trees,
                              max_depth=max_depth, extra=extra),
        (generate_valid_tree(schema, rng=r, max_depth=max_depth)
         for _ in range(random_trees)),
    ):
        if is_counterexample(tree):
            return False, tree
    return True, None
