"""The static-analysis framework: modules, rules, findings, suppression.

The checker is ``ast``-based and dependency-free: it parses every Python
file under the given paths (nothing is imported or executed), hands the
parsed modules to a registry of :class:`Rule` objects, and reports
:class:`Finding` records.  Each rule pins one *architectural invariant*
the test suite can only probe pointwise — the backend seam, lock
discipline, async purity, wire-codec completeness, exception hygiene,
resource lifecycle — so a many-file refactor that silently violates a
contract fails ``python -m repro.analysis src/`` (and the tier-1 meta
test) instead of surfacing as a rare race or a backend-divergent answer.

Suppression is per-line and must be justified::

    risky_call()  # repro: allow[rule-id] one-line reason why this is fine

A suppression comment on its own line applies to the next code line.  A
suppression *without* a reason is itself a finding (rule id
``suppression``) and does not suppress anything — the written reason is
the point.

Fixture files (and any file whose on-disk location does not reflect its
intended package) can pin their dotted module name with a header
comment::

    # repro-module: repro.learning.some_learner

which is how ``tests/analysis_fixtures/`` exercises path-scoped rules.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: ``# repro: allow[rule-id] reason`` — reason is mandatory.
SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([a-z0-9-]+)\]\s*(.*)$")

#: ``# repro-module: dotted.name`` — module-name override for fixtures.
MODULE_RE = re.compile(r"^#\s*repro-module:\s*([\w.]+)\s*$")

#: Rule id of the framework's own findings about malformed suppressions.
SUPPRESSION_RULE_ID = "suppression"

#: Rule id reported for files that do not parse.
PARSE_RULE_ID = "parse-error"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] " \
               f"{self.message}"

    def to_json(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}


@dataclass(frozen=True)
class Suppression:
    """One well-formed ``# repro: allow[...]`` comment."""

    rule: str
    reason: str
    comment_line: int
    #: The code line the suppression applies to (the comment's own line,
    #: or the next code line for a standalone comment).
    target_line: int


class ModuleInfo:
    """One parsed source file plus its comment-level annotations."""

    def __init__(self, path: Path, *, display_path: str | None = None,
                 source: str | None = None) -> None:
        self.path = path
        self.display_path = display_path if display_path is not None \
            else str(path)
        self.source = source if source is not None \
            else path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.parse_error: SyntaxError | None = None
        try:
            self.tree: ast.Module | None = ast.parse(
                self.source, filename=self.display_path)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = exc
        self.module = self._derive_module_name()
        #: line number -> comment text (real comments only, via tokenize
        #: — a ``#`` inside a string literal is not a comment and must
        #: not carry annotations).
        self.comments: dict[int, str] = self._collect_comments()
        self.suppressions: list[Suppression] = []
        self.malformed_suppressions: list[int] = []
        self._parse_suppressions()
        #: target line -> rule ids allowed there.
        self.allowed: dict[int, set[str]] = {}
        for sup in self.suppressions:
            self.allowed.setdefault(sup.target_line, set()).add(sup.rule)

    # ------------------------------------------------------------------
    def _derive_module_name(self) -> str:
        for line in self.lines[:10]:
            match = MODULE_RE.match(line.strip())
            if match:
                return match.group(1)
        parts = list(self.path.parts)
        if "repro" in parts:
            tail = parts[parts.index("repro"):]
            if tail[-1] == "__init__.py":
                tail = tail[:-1]
            elif tail[-1].endswith(".py"):
                tail[-1] = tail[-1][:-3]
            return ".".join(tail)
        return self.path.stem

    def _collect_comments(self) -> dict[int, str]:
        comments: dict[int, str] = {}
        try:
            for tok in tokenize.generate_tokens(
                    io.StringIO(self.source).readline):
                if tok.type == tokenize.COMMENT:
                    comments[tok.start[0]] = tok.string
        except (tokenize.TokenError, SyntaxError, IndentationError):
            pass  # unparsable files already carry a parse-error finding
        return comments

    def _parse_suppressions(self) -> None:
        for i, comment in sorted(self.comments.items()):
            match = SUPPRESS_RE.search(comment)
            if not match:
                continue
            rule, reason = match.group(1), match.group(2).strip()
            if not reason:
                self.malformed_suppressions.append(i)
                continue
            target = i
            if self.lines[i - 1].strip().startswith("#"):
                # Standalone comment: applies to the next code line.
                for j in range(i + 1, len(self.lines) + 1):
                    text = self.lines[j - 1].strip()
                    if text and not text.startswith("#"):
                        target = j
                        break
            self.suppressions.append(
                Suppression(rule, reason, comment_line=i, target_line=target))

    # ------------------------------------------------------------------
    def finding(self, node: ast.AST | int, rule: str,
                message: str) -> Finding:
        """A finding anchored at an AST node (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 0)
            col = getattr(node, "col_offset", 0) + 1
        return Finding(self.display_path, line, col, rule, message)

    def comment_on(self, line: int, pattern: re.Pattern) -> re.Match | None:
        """Match ``pattern`` against the real comment (if any) on a line."""
        comment = self.comments.get(line)
        return pattern.search(comment) if comment else None

    def __repr__(self) -> str:
        return f"<ModuleInfo {self.module} ({self.display_path})>"


class Project:
    """Every module of one analysis run, addressable by dotted name."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules = list(modules)
        self._by_name: dict[str, ModuleInfo] = {}
        for module in self.modules:
            self._by_name.setdefault(module.module, module)

    def module(self, dotted: str) -> ModuleInfo | None:
        return self._by_name.get(dotted)

    def in_package(self, prefix: str) -> list[ModuleInfo]:
        """Modules whose dotted name is ``prefix`` or lives under it."""
        return [m for m in self.modules
                if m.module == prefix or m.module.startswith(prefix + ".")]


class Rule:
    """One enforced invariant.  Subclass, set the metadata, implement
    :meth:`check_module` (per file) and/or :meth:`check_project` (cross
    file), and decorate with :func:`register`."""

    rule_id: str = ""
    title: str = ""
    #: Multi-line description shown by ``--list-rules`` (what contract
    #: the rule pins, and what a violation means).
    rationale: str = ""

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add the rule to the registry."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> dict[str, Rule]:
    """The full rule registry (importing the rule modules on first use)."""
    from repro.analysis import rules  # noqa: F401  (registration side effect)

    return dict(sorted(_REGISTRY.items()))


# ---------------------------------------------------------------------------
# Running an analysis
# ---------------------------------------------------------------------------


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    n_modules: int = 0
    rule_ids: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "modules": self.n_modules,
            "rules": self.rule_ids,
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
        }

    def render_text(self, *, show_suppressed: bool = False) -> str:
        out: list[str] = []
        for finding in sorted(self.findings):
            out.append(finding.format())
        if show_suppressed:
            for finding in sorted(self.suppressed):
                out.append(f"{finding.format()} (suppressed)")
        verdict = "clean" if self.ok else \
            f"{len(self.findings)} violation(s)"
        out.append(
            f"repro.analysis: {verdict} across {self.n_modules} module(s), "
            f"{len(self.rule_ids)} rule(s), "
            f"{len(self.suppressed)} suppressed")
        return "\n".join(out)

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if "__pycache__" not in file.parts:
                    yield file
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")


def load_project(paths: Sequence[Path | str]) -> Project:
    return Project([ModuleInfo(p) for p in iter_python_files(paths)])


def _framework_findings(project: Project) -> Iterator[Finding]:
    """Findings the framework itself owns: parse errors, bad suppressions."""
    for module in project.modules:
        if module.parse_error is not None:
            yield module.finding(
                module.parse_error.lineno or 1, PARSE_RULE_ID,
                f"file does not parse: {module.parse_error.msg}")
        for line in module.malformed_suppressions:
            yield module.finding(
                line, SUPPRESSION_RULE_ID,
                "suppression comment is missing its reason — write "
                "`# repro: allow[rule-id] why this is intentional`")


def analyze_project(project: Project,
                    rule_ids: Sequence[str] | None = None) -> Report:
    registry = all_rules()
    if rule_ids:
        unknown = sorted(set(rule_ids) - set(registry))
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
        rules = [registry[r] for r in rule_ids]
    else:
        rules = list(registry.values())
    raw: list[Finding] = list(_framework_findings(project))
    for rule in rules:
        for module in project.modules:
            if module.tree is not None:
                raw.extend(rule.check_module(module, project))
        raw.extend(rule.check_project(project))
    by_path = {m.display_path: m for m in project.modules}
    report = Report(n_modules=len(project.modules),
                    rule_ids=[r.rule_id for r in rules])
    for finding in sorted(set(raw)):
        module = by_path.get(finding.path)
        allowed = module.allowed.get(finding.line, set()) if module else set()
        if finding.rule in allowed:
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report


def analyze_paths(paths: Sequence[Path | str],
                  rule_ids: Sequence[str] | None = None) -> Report:
    """Parse every file under ``paths`` and run the (selected) rules."""
    return analyze_project(load_project(paths), rule_ids)


# ---------------------------------------------------------------------------
# Small shared AST helpers for the rule implementations
# ---------------------------------------------------------------------------


def is_self_attr(node: ast.AST, attr: str | None = None) -> bool:
    """``self.<attr>`` (any attribute when ``attr`` is None)."""
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and (attr is None or node.attr == attr))


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def const_strings(node: ast.AST) -> list[tuple[ast.AST, str]]:
    """String constants in ``node`` (the node itself or tuple/list items)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [(node, node.value)]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out: list[tuple[ast.AST, str]] = []
        for item in node.elts:
            if isinstance(item, ast.Constant) and isinstance(item.value, str):
                out.append((item, item.value))
        return out
    return []
