"""Command-line front-end: ``python -m repro.analysis [paths...]``.

Exit status is the contract CI relies on: 0 when the tree is clean
(suppressed findings do not fail the run — their written reasons are
the audit trail), 1 when any violation stands, 2 on usage errors.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.analysis.core import all_rules, analyze_paths


def _list_rules() -> str:
    out: list[str] = []
    for rule_id, rule in all_rules().items():
        out.append(f"{rule_id}: {rule.title}")
        for line in rule.rationale.split(". "):
            line = line.strip().rstrip(".")
            if line:
                out.append(f"    {line}.")
    out.append(
        "suppress one line with: "
        "`# repro: allow[rule-id] reason the violation is intentional`")
    return "\n".join(out)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="statically check the repo's architectural invariants")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--rules", metavar="ID[,ID...]",
                        help="run only these rule ids")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every registered rule and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()] \
        if args.rules else None
    try:
        report = analyze_paths(args.paths, rule_ids)
    except (FileNotFoundError, KeyError) as exc:
        parser.error(str(exc))  # exits 2
        raise AssertionError("unreachable") from exc
    if args.json:
        print(report.render_json())
    else:
        print(report.render_text(show_suppressed=args.show_suppressed))
    return 0 if report.ok else 1
