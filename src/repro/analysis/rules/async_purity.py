"""Rule ``async-purity``: the event loop is never blocked, locks never
held across ``await``.

The serving tier's whole streaming story rests on two properties of
:mod:`repro.serving.async_evaluator` / :mod:`repro.serving.net`:

* an ``async def`` body never performs blocking work on the loop thread
  — evaluation is bridged through ``asyncio.wrap_future`` (pooled
  executors) or ``loop.run_in_executor`` (inline executors), and IO goes
  through asyncio streams.  One blocking call (``time.sleep``, a
  blocking socket primitive, a synchronous :class:`WorkloadClient`, a
  bare ``concurrent.futures`` wait) stalls *every* connection at once;
* no ``await`` happens while a synchronous (threading) lock is held —
  the coroutine may suspend for arbitrarily long with the lock taken,
  deadlocking any thread (or any other coroutine's executor callback)
  that needs it.

This rule scans every ``async def`` in the tree for a blocklist of
blocking calls by name — ``time.sleep``, blocking socket constructors
and methods, the blocking wire helpers (``send_frame_blocking`` /
``recv_frame_blocking`` / ``recv_frame_counted``), synchronous
``WorkloadClient(...)`` construction, ``concurrent.futures.wait`` and
``Future.result()`` — and for ``await`` expressions lexically inside a
synchronous ``with`` on a lock-like context manager (a name containing
``lock``; ``async with`` is fine).  Calls that are provably
non-blocking in context (e.g. ``.result()`` on a future that was just
awaited to completion) are suppressed per line with a written reason.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_name,
    register,
)

#: Dotted call targets that block the calling thread.
BLOCKING_DOTTED = {
    "time.sleep",
    "socket.create_connection",
    "socket.socket",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "concurrent.futures.wait",
    "futures.wait",
}

#: Bare-name calls that block (the blocking wire helpers, sync clients).
BLOCKING_NAMES = {
    "send_frame_blocking",
    "recv_frame_blocking",
    "recv_frame_counted",
    "WorkloadClient",
    "ServerThread",
}

#: Method names that block regardless of receiver (socket/file/future
#: primitives).  ``result`` covers ``concurrent.futures.Future.result()``
#: — an already-completed future's ``result()`` is fine and gets a
#: per-line suppression with the reason written down.
BLOCKING_METHODS = {"sendall", "recv", "accept", "connect", "makefile",
                    "result"}


def _lockish(expr: ast.AST) -> bool:
    """Does a with-item context expression look like a threading lock?"""
    name = dotted_name(expr)
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
    return bool(name) and "lock" in name.lower()


@register
class AsyncPurityRule(Rule):
    rule_id = "async-purity"
    title = "async def bodies never block the loop or await under a lock"
    rationale = (
        "Inside any `async def`: no blocking calls (time.sleep, blocking "
        "sockets, sync wire helpers, WorkloadClient, "
        "concurrent.futures.wait, Future.result), and no `await` while a "
        "synchronous lock is held. One blocking call on the loop thread "
        "stalls every connection of the serving tier at once."
    )

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        if module.tree is None:
            return ()
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                for stmt in node.body:
                    findings.extend(self._walk(module, stmt,
                                               locks_held=False))
        return findings

    def _walk(self, module: ModuleInfo, node: ast.AST, *,
              locks_held: bool) -> Iterator[Finding]:
        if isinstance(node, ast.FunctionDef):
            # A nested sync def is not awaited here; its body runs on
            # whatever thread calls it — out of scope for this pass.
            return
        if isinstance(node, ast.AsyncFunctionDef):
            # Nested coroutine: fresh scope, no lock inherited lexically.
            for stmt in node.body:
                yield from self._walk(module, stmt, locks_held=False)
            return
        if isinstance(node, ast.With):
            holds = locks_held or any(_lockish(item.context_expr)
                                      for item in node.items)
            for item in node.items:
                yield from self._walk(module, item.context_expr,
                                      locks_held=locks_held)
            for child in node.body:
                yield from self._walk(module, child, locks_held=holds)
            return
        if isinstance(node, ast.Await):
            if locks_held:
                yield module.finding(
                    node, self.rule_id,
                    "await while a synchronous lock is held — the "
                    "coroutine can suspend indefinitely with the lock "
                    "taken; release it first or use an asyncio lock")
            yield from self._walk(module, node.value,
                                  locks_held=locks_held)
            return
        if isinstance(node, ast.Call):
            yield from self._check_call(module, node)
        for child in ast.iter_child_nodes(node):
            yield from self._walk(module, child, locks_held=locks_held)

    def _check_call(self, module: ModuleInfo,
                    node: ast.Call) -> Iterator[Finding]:
        func = node.func
        dotted = dotted_name(func)
        if dotted in BLOCKING_DOTTED:
            yield module.finding(
                node, self.rule_id,
                f"blocking call {dotted}() inside an async def — "
                f"offload it via loop.run_in_executor")
        elif isinstance(func, ast.Name) and func.id in BLOCKING_NAMES:
            yield module.finding(
                node, self.rule_id,
                f"{func.id}() is synchronous/blocking; an async def "
                f"must use the asyncio-native path instead")
        elif isinstance(func, ast.Attribute) \
                and func.attr in BLOCKING_METHODS \
                and not isinstance(func.value, ast.Constant):
            yield module.finding(
                node, self.rule_id,
                f".{func.attr}() can block the event loop thread; "
                f"await the asyncio equivalent (or suppress with the "
                f"reason it cannot block here)")
