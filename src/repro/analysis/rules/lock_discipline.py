"""Rule ``lock-discipline``: declared lock-guarded state stays guarded.

The engine and serving tiers are thread-safe by a simple discipline:
every piece of shared mutable state belongs to exactly one lock, and is
only touched while that lock is held.  The discipline is *declared* in
the source with a trailing comment on the attribute's initialising
assignment::

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}   # guarded-by: _lock
            self.hits = 0        # guarded-by: _lock

and this rule enforces it: within the declaring class, every read or
write of ``self._entries`` / ``self.hits`` outside a ``with self._lock:``
block is a violation (``__init__``/``__post_init__`` are exempt — the
object is not yet shared).  A field that is *intentionally* lock-free
documents that fact instead::

    self.in_flight = 0  # lock-free: only touched on the event loop thread

A ``lock-free`` annotation without a reason is a violation too — the
written reason is the contract.

The check is lexical and conservative: passing a guarded attribute as an
argument (e.g. handing a map reference to a helper that locks
internally) counts as an access and needs a per-line
``# repro: allow[lock-discipline] reason`` suppression; code inside
nested functions/lambdas is checked as if no lock were held, because it
may run after the enclosing ``with`` exits.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    is_self_attr,
    register,
)

GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(\w+)")
LOCK_FREE_RE = re.compile(r"#\s*lock-free:\s*(.*)$")

#: Methods allowed to touch guarded attributes unlocked: construction
#: happens before the object is shared.
EXEMPT_METHODS = {"__init__", "__post_init__", "__new__"}


@register
class LockDisciplineRule(Rule):
    rule_id = "lock-discipline"
    title = "guarded-by annotated attributes accessed only under their lock"
    rationale = (
        "An attribute declared `# guarded-by: _lock` on its initialising "
        "assignment may only be read or written inside a `with "
        "self._lock:` block in the declaring class (init exempt). "
        "Intentionally unsynchronised fields carry `# lock-free: reason` "
        "instead. Pins the engine/serving thread-safety contract."
    )

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        if module.tree is None:
            return ()
        if not any(GUARDED_BY_RE.search(c) or LOCK_FREE_RE.search(c)
                   for c in module.comments.values()):
            return ()
        return list(self._scan(module))

    # ------------------------------------------------------------------
    def _scan(self, module: ModuleInfo) -> Iterator[Finding]:
        yield from self._check_lock_free_reasons(module)
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_lock_free_reasons(self,
                                 module: ModuleInfo) -> Iterator[Finding]:
        for i, comment in sorted(module.comments.items()):
            match = LOCK_FREE_RE.search(comment)
            if match and not match.group(1).strip():
                yield module.finding(
                    i, self.rule_id,
                    "lock-free annotation is missing its reason — "
                    "document why this field needs no lock")

    # ------------------------------------------------------------------
    def _annotation_for(self, module: ModuleInfo,
                        node: ast.AST) -> tuple[re.Match | None, int]:
        """The guarded-by annotation of an assignment: a trailing comment
        on its first line, or a standalone comment on the line above
        (multi-line declarations).  Returns (match, comment line)."""
        line = node.lineno
        match = module.comment_on(line, GUARDED_BY_RE)
        if match:
            return match, line
        prev = line - 1
        if prev >= 1 and module.lines[prev - 1].strip().startswith("#"):
            match = module.comment_on(prev, GUARDED_BY_RE)
            if match:
                return match, prev
        return None, line

    def _guarded_attrs(self, module: ModuleInfo,
                       cls: ast.ClassDef) -> tuple[dict[str, str],
                                                   list[Finding]]:
        """``attr -> lock name`` declared in this class, plus any
        annotation comments that failed to attach to an assignment."""
        guarded: dict[str, str] = {}
        findings: list[Finding] = []
        annotated_lines: set[int] = set()
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                match, comment_line = self._annotation_for(module, node)
                if not match:
                    continue
                annotated_lines.add(comment_line)
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if is_self_attr(target):
                        guarded[target.attr] = match.group(1)
                    elif isinstance(target, ast.Name):
                        guarded[target.id] = match.group(1)
        first, last = cls.lineno, max(
            getattr(n, "lineno", cls.lineno) for n in ast.walk(cls))
        for i in range(first, last + 1):
            if module.comment_on(i, GUARDED_BY_RE) \
                    and i not in annotated_lines:
                findings.append(module.finding(
                    i, self.rule_id,
                    "guarded-by annotation is not attached to an "
                    "attribute assignment"))
        return guarded, findings

    def _check_class(self, module: ModuleInfo,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        guarded, orphan_findings = self._guarded_attrs(module, cls)
        yield from orphan_findings
        if not guarded:
            return
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and item.name not in EXEMPT_METHODS:
                for stmt in item.body:
                    yield from self._walk(module, stmt, guarded,
                                          held=frozenset())

    def _walk(self, module: ModuleInfo, node: ast.AST,
              guarded: dict[str, str],
              held: frozenset[str]) -> Iterator[Finding]:
        if isinstance(node, ast.With):
            acquired = set()
            for item in node.items:
                expr = item.context_expr
                yield from self._walk(module, expr, guarded, held)
                if is_self_attr(expr):
                    acquired.add(expr.attr)
            inner = held | acquired
            for child in node.body:
                yield from self._walk(module, child, guarded, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # A nested function may outlive the with-block it was
            # defined in; check its body as if no lock were held.
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                yield from self._walk(module, child, guarded, frozenset())
            return
        if is_self_attr(node) and node.attr in guarded \
                and guarded[node.attr] not in held:
            access = "write" if isinstance(node.ctx,
                                           (ast.Store, ast.Del)) else "read"
            yield module.finding(
                node, self.rule_id,
                f"{access} of self.{node.attr} outside `with "
                f"self.{guarded[node.attr]}:` (declared guarded-by "
                f"{guarded[node.attr]})")
            return  # do not double-report the chain below the attribute
        for child in ast.iter_child_nodes(node):
            yield from self._walk(module, child, guarded, held)
