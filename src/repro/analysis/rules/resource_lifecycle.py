"""Rule ``resource-lifecycle``: closeables are closed on every path.

The serving tier and the remote backend create real OS resources —
sockets (``socket.create_connection``), worker pools
(``ThreadPoolExecutor`` / ``ProcessPoolExecutor``), connections
(``WorkloadClient``), fleet member subprocesses
(``multiprocessing`` ``Process``), files (``open``).  Leaking one does not fail a
test; it exhausts descriptors or leaves worker processes behind after
hours of serving.  The discipline in ``repro.serving`` and
``repro.learning.backend`` is that every such creation has a visible
owner responsible for closing it:

* created as a ``with`` item — the block owns it;
* stored on ``self`` — the declaring class must define a close-like
  method (``close`` / ``stop`` / ``shutdown`` / ``__exit__`` / ...);
* bound to a local — the local must either *escape* the function
  (returned, yielded, stored onto an object, handed to another call —
  e.g. appended to a connection pool) or be closed in a ``finally:``
  block.  A local that is closed only on the straight-line path leaks
  on the exception path; a local that is never closed and never escapes
  is a plain leak;
* used inline and discarded (``WorkloadClient(...).run(...)``, a bare
  expression statement) — always a violation: nothing can ever close it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_name,
    is_self_attr,
    register,
)

#: Packages/modules where the discipline is enforced.
SCOPED = ("repro.serving", "repro.learning.backend")

#: Dotted call targets that allocate a closeable resource.
CLOSEABLE_DOTTED = {"socket.create_connection", "socket.socket"}

#: Constructor names (bare or attribute tail) that allocate a closeable.
#: ``Process`` covers the fleet's member subprocesses
#: (``multiprocessing`` contexts spell the constructor ``ctx.Process``).
CLOSEABLE_NAMES = {"ThreadPoolExecutor", "ProcessPoolExecutor",
                   "WorkloadClient", "Process", "open"}

#: Method names that count as releasing a resource.  ``kill``/``join``
#: are how subprocess handles are released.
CLOSE_CALLS = {"close", "aclose", "stop", "shutdown", "terminate",
               "release", "kill", "join"}

#: A class owning a closeable must expose one of these.
CLOSE_METHODS = {"close", "aclose", "stop", "shutdown",
                 "__exit__", "__aexit__", "__del__"}


def _in_scope(module: ModuleInfo) -> bool:
    return any(module.module == s or module.module.startswith(s + ".")
               for s in SCOPED)


def _is_creation(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = dotted_name(node.func)
    if dotted in CLOSEABLE_DOTTED:
        return True
    tail = dotted.rsplit(".", 1)[-1] if dotted else None
    if isinstance(node.func, ast.Name):
        tail = node.func.id
    elif isinstance(node.func, ast.Attribute):
        tail = node.func.attr
    return tail in CLOSEABLE_NAMES


def _what(node: ast.Call) -> str:
    return dotted_name(node.func) or "<closeable>"


@register
class ResourceLifecycleRule(Rule):
    rule_id = "resource-lifecycle"
    title = "every closeable has an owner that closes it on all paths"
    rationale = (
        "Sockets, executors, WorkloadClients and files created in "
        "repro.serving / repro.learning.backend must be owned: a with "
        "block, a self attribute on a class that defines close()-like "
        "cleanup, or a local that escapes or is closed in a finally. "
        "Inline-discarded closeables and straight-line-only close() "
        "calls leak descriptors and worker processes under error paths."
    )

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        if module.tree is None or not _in_scope(module):
            return ()
        return list(self._scan(module))

    # ------------------------------------------------------------------
    def _scan(self, module: ModuleInfo) -> Iterator[Finding]:
        assert module.tree is not None
        parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(module.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in ast.walk(module.tree):
            if _is_creation(node):
                yield from self._check_creation(module, node, parents)

    def _enclosing(self, node: ast.AST, parents: dict[ast.AST, ast.AST],
                   kinds: tuple[type, ...]) -> ast.AST | None:
        cur = parents.get(node)
        while cur is not None:
            if isinstance(cur, kinds):
                return cur
            cur = parents.get(cur)
        return None

    def _check_creation(self, module: ModuleInfo, call: ast.Call,
                        parents: dict[ast.AST, ast.AST],
                        ) -> Iterator[Finding]:
        parent = parents.get(call)
        if isinstance(parent, ast.withitem):
            return  # the with block owns and closes it
        if isinstance(parent, ast.Attribute):
            yield module.finding(
                call, self.rule_id,
                f"{_what(call)}(...) is used inline and discarded — "
                f"nothing can ever close it; bind it or use `with`")
            return
        if isinstance(parent, ast.Expr):
            yield module.finding(
                call, self.rule_id,
                f"{_what(call)}(...) result is discarded — the resource "
                f"leaks immediately")
            return
        if isinstance(parent, (ast.Assign, ast.AnnAssign)) \
                and call is parent.value:
            targets = parent.targets if isinstance(parent, ast.Assign) \
                else [parent.target]
            for target in targets:
                yield from self._check_binding(module, call, target, parents)
            return
        # Any other position (return value, call argument, comprehension
        # element, conditional expression arm) hands the object to code
        # that can see it — ownership escapes this expression.

    # ------------------------------------------------------------------
    def _check_binding(self, module: ModuleInfo, call: ast.Call,
                       target: ast.AST,
                       parents: dict[ast.AST, ast.AST]) -> Iterator[Finding]:
        if is_self_attr(target):
            cls = self._enclosing(call, parents, (ast.ClassDef,))
            if isinstance(cls, ast.ClassDef) and not self._class_closes(cls):
                yield module.finding(
                    call, self.rule_id,
                    f"{_what(call)}(...) is stored on self.{target.attr} "
                    f"but class {cls.name} defines no close-like method "
                    f"({', '.join(sorted(CLOSE_METHODS))})")
            return
        if not isinstance(target, ast.Name):
            return  # stored into a container/attribute chain: escapes
        func = self._enclosing(
            call, parents, (ast.FunctionDef, ast.AsyncFunctionDef))
        if func is None:
            return  # module-level singleton: lives for the process
        name = target.id
        if self._name_escapes(func, name, call):
            return
        closed_in_finally, closed_anywhere = self._close_sites(func, name)
        if closed_in_finally:
            return
        if closed_anywhere:
            yield module.finding(
                call, self.rule_id,
                f"{_what(call)}(...) bound to {name!r} is closed only on "
                f"the straight-line path — an exception before the close "
                f"leaks it; move the close into try/finally or use `with`")
        else:
            yield module.finding(
                call, self.rule_id,
                f"{_what(call)}(...) bound to {name!r} is never closed "
                f"and never escapes this function")

    @staticmethod
    def _class_closes(cls: ast.ClassDef) -> bool:
        if any(isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
               and item.name in CLOSE_METHODS for item in cls.body):
            return True
        # Subclasses of an in-repo base that defines close() (e.g. the
        # ShardExecutor hierarchy) inherit their cleanup contract.
        return bool(cls.bases)

    def _name_escapes(self, func: ast.AST, name: str,
                      creation: ast.Call) -> bool:
        for node in ast.walk(func):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) \
                    and node.value is not None \
                    and self._mentions(node.value, name):
                return True
            if isinstance(node, ast.Call) and node is not creation:
                args = list(node.args) + [kw.value for kw in node.keywords]
                if any(self._mentions(a, name) for a in args):
                    return True
            if isinstance(node, ast.Assign) \
                    and self._mentions(node.value, name) \
                    and any(not isinstance(t, ast.Name)
                            for t in node.targets):
                return True
            if isinstance(node, ast.withitem) \
                    and self._mentions(node.context_expr, name):
                return True
        return False

    @staticmethod
    def _mentions(expr: ast.AST, name: str) -> bool:
        return any(isinstance(n, ast.Name) and n.id == name
                   and isinstance(n.ctx, ast.Load)
                   for n in ast.walk(expr))

    def _close_sites(self, func: ast.AST, name: str) -> tuple[bool, bool]:
        """(closed inside a finally block, closed anywhere at all)."""
        in_finally = anywhere = False
        finally_nodes: set[ast.AST] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                for stmt in node.finalbody:
                    finally_nodes.update(ast.walk(stmt))
        for node in ast.walk(func):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in CLOSE_CALLS \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == name:
                anywhere = True
                if node in finally_nodes:
                    in_finally = True
        return in_finally, anywhere
