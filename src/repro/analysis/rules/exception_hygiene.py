"""Rule ``exception-hygiene``: no handler silently swallows failures.

The serving tier is long-running: a swallowed exception in a connection
handler, shard worker, or cache finalizer does not crash a test — it
turns into a hung client, a leaked slot, or a silently wrong answer
hours later.  The discipline in ``repro.serving`` and ``repro.engine``
is that every broad handler does *something* observable with the error.

Concretely, inside those two packages:

* a bare ``except:`` is always a violation — it catches
  ``KeyboardInterrupt``/``SystemExit`` too and hides the name of what
  it swallowed;
* an ``except Exception:`` / ``except BaseException:`` handler must
  either re-raise (a ``raise`` statement anywhere in the handler), or
  bind the exception (``as exc``) and actually *use* the bound name —
  encode it onto the wire, log it, store it on a future.  A broad
  handler whose body never mentions the error it caught is a swallow.

Narrow handlers (``except KeyError:`` etc.) are out of scope: catching
a specific exception is a statement of intent in itself.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Finding, ModuleInfo, Project, Rule, register

#: Packages where the discipline is enforced.
SCOPED_PACKAGES = ("repro.serving", "repro.engine")

#: Exception names considered "broad" when caught.
BROAD_NAMES = {"Exception", "BaseException"}


def _in_scope(module: ModuleInfo) -> bool:
    return any(module.module == pkg or module.module.startswith(pkg + ".")
               for pkg in SCOPED_PACKAGES)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if isinstance(t, ast.Name):
        return t.id in BROAD_NAMES
    if isinstance(t, ast.Attribute):
        return t.attr in BROAD_NAMES
    return False


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def _handler_uses_name(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    for node in ast.walk(handler):
        if isinstance(node, ast.Name) and node.id == handler.name \
                and isinstance(node.ctx, ast.Load):
            return True
    return False


@register
class ExceptionHygieneRule(Rule):
    rule_id = "exception-hygiene"
    title = "broad except handlers re-raise or use the caught exception"
    rationale = (
        "In repro.serving and repro.engine a bare `except:` is forbidden, "
        "and an `except Exception/BaseException:` must re-raise or bind "
        "the exception as a name and use it (wire it, log it, attach it "
        "to a future). A handler that swallows a broad catch turns server "
        "failures into hung clients and leaked gate slots."
    )

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        if module.tree is None or not _in_scope(module):
            return ()
        return list(self._scan(module))

    def _scan(self, module: ModuleInfo) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.finding(
                    node, self.rule_id,
                    "bare `except:` catches KeyboardInterrupt/SystemExit "
                    "and hides what it swallowed — name the exception")
                continue
            if not _is_broad(node):
                continue
            if _handler_reraises(node) or _handler_uses_name(node):
                continue
            yield module.finding(
                node, self.rule_id,
                "broad except handler neither re-raises nor uses the "
                "caught exception — bind it `as exc` and surface it, "
                "or re-raise")
