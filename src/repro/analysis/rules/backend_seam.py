"""Rule ``backend-seam``: learners evaluate only through the backend.

PR 4's load-bearing contract — for every learner and session, the
learned query, the question sequence, and the returned node objects are
identical on all three :class:`~repro.learning.backend.EvaluationBackend`
implementations — holds only because the learning layer has exactly one
way to evaluate a hypothesis.  A learner that imports the engine (or the
engine-backed module-level ``evaluate``/``evaluate_rpq`` wrappers)
directly would silently pin itself to the local path: it would pass
every local test and diverge the moment it runs remote or batched.

So: modules under ``repro.learning.*`` — except ``backend.py`` itself,
which *is* the seam — may not import ``repro.engine`` (any submodule,
any name), may not import the engine-backed evaluation wrappers from
``repro.twig.semantics`` / ``repro.graphdb.rpq``, and may not call
``get_engine()`` / ``Engine(...)`` or the engine's evaluation methods
(``evaluate_twig`` / ``evaluate_rpq``) directly.  Engine-adjacent
utilities the learning layer legitimately needs (e.g.
:class:`~repro.engine.cache.LRUCache`) are re-exported by
``repro.learning.backend`` for exactly this reason.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Finding, ModuleInfo, Project, Rule, register

#: The one learning module allowed to touch the engine.
SEAM_MODULE = "repro.learning.backend"

#: Evaluation entry points that bypass the seam when imported by name.
FORBIDDEN_FROM = {
    "repro.twig.semantics": {"evaluate"},
    "repro.graphdb.rpq": {"evaluate_rpq"},
}

#: Calls that reach the engine directly.
FORBIDDEN_CALLS = {"get_engine", "reset_engine"}
FORBIDDEN_METHOD_CALLS = {"evaluate_twig", "evaluate_rpq", "evaluate_naive",
                          "evaluate_rpq_naive"}


@register
class BackendSeamRule(Rule):
    rule_id = "backend-seam"
    title = "learning modules route evaluation through the backend seam"
    rationale = (
        "repro.learning.* (except backend.py) may not import repro.engine "
        "or the engine-backed evaluate wrappers, nor call "
        "get_engine()/Engine.evaluate* directly — all hypothesis "
        "evaluation goes through EvaluationBackend, which is what keeps "
        "learners backend-invariant (same query, same questions, same "
        "node objects on local/batched/remote)."
    )

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        if not module.module.startswith("repro.learning."):
            return ()
        if module.module == SEAM_MODULE:
            return ()
        return list(self._scan(module))

    def _scan(self, module: ModuleInfo) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.engine" \
                            or alias.name.startswith("repro.engine."):
                        yield module.finding(
                            node, self.rule_id,
                            f"import of {alias.name!r} bypasses the "
                            f"EvaluationBackend seam; use "
                            f"{SEAM_MODULE} instead")
            elif isinstance(node, ast.ImportFrom):
                origin = node.module or ""
                if origin == "repro.engine" \
                        or origin.startswith("repro.engine."):
                    yield module.finding(
                        node, self.rule_id,
                        f"import from {origin!r} bypasses the "
                        f"EvaluationBackend seam; re-export the name "
                        f"through {SEAM_MODULE}")
                elif origin in FORBIDDEN_FROM:
                    banned = FORBIDDEN_FROM[origin] & \
                        {alias.name for alias in node.names}
                    for name in sorted(banned):
                        yield module.finding(
                            node, self.rule_id,
                            f"importing {name!r} from {origin!r} is "
                            f"engine-backed evaluation outside the "
                            f"backend seam; call backend.{name_hint(name)} "
                            f"instead")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) \
                        and func.id in FORBIDDEN_CALLS:
                    yield module.finding(
                        node, self.rule_id,
                        f"direct {func.id}() call bypasses the "
                        f"EvaluationBackend seam")
                elif isinstance(func, ast.Attribute) \
                        and func.attr in FORBIDDEN_METHOD_CALLS:
                    yield module.finding(
                        node, self.rule_id,
                        f".{func.attr}() is a direct engine evaluation "
                        f"call; route it through the backend's "
                        f"selects*/accepts*/evaluate_batch surface")


def name_hint(name: str) -> str:
    """The backend-surface spelling of a bypassed evaluation call."""
    return {"evaluate": "evaluate_twig_batch",
            "evaluate_rpq": "evaluate_rpq_batch"}.get(name, name)
