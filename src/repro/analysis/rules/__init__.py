"""The built-in rule set.  Importing this package registers every rule.

Each module defines one :class:`~repro.analysis.core.Rule` subclass and
decorates it with :func:`~repro.analysis.core.register`; the registry is
what :func:`~repro.analysis.core.all_rules` (and therefore the CLI and
the tier-1 meta test) sees.
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    async_purity,
    backend_seam,
    exception_hygiene,
    lock_discipline,
    resource_lifecycle,
    wire_codec,
)

__all__ = [
    "async_purity",
    "backend_seam",
    "exception_hygiene",
    "lock_discipline",
    "resource_lifecycle",
    "wire_codec",
]
