"""Rule ``wire-codec``: the wire protocol stays complete and closed.

Three completeness contracts over :mod:`repro.serving.wire` and the
serving package, each of which has historically only been checked by
whichever round-trip test happened to exercise the path:

1. **Codec pairing.**  Every ``encode_<x>`` in ``repro.serving.wire``
   has a matching ``decode_<x>`` somewhere in the module (free function
   or method) and vice versa — a one-directional codec means some frame
   can be produced that no peer can consume, or parsed that no client
   can emit.

2. **Tag registries.**  ``repro.serving.wire`` declares the closed
   vocabularies of the protocol as module-level ``*_TYPES`` / ``*_KINDS``
   frozensets of string literals (``FRAME_TYPES``, ``RECORD_TYPES``,
   ``ITEM_KINDS``).  Every tag literal must live in **exactly one**
   registry, and every serving-package construction or comparison of a
   tag — a ``{"type": "..."}`` / ``{"kind": "..."}`` dict literal, or a
   comparison against an expression derived from ``.get("type")`` /
   ``.get("kind")`` (by convention bound to a variable named ``kind``)
   — must use a registered literal.  An unregistered tag is either a
   typo (the peer will reject it) or a new frame type added without
   updating the registry (so no exhaustiveness check sees it).

3. **ShardTask picklability.**  Every field annotation on the
   :class:`~repro.serving.evaluator.ShardTask` dataclass must avoid
   known-unpicklable types (callables, locks, threads, sockets, open
   files, live iterators) — the process executor pickles tasks, and an
   unpicklable field only fails at runtime, on the process pool, under
   load.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    const_strings,
    register,
)

WIRE_MODULE = "repro.serving.wire"
EVALUATOR_MODULE = "repro.serving.evaluator"
SERVING_PACKAGE = "repro.serving"

CODEC_RE = re.compile(r"^_?(encode|decode)_(\w+)$")

#: dict keys that carry protocol tags, mapped to the registry names that
#: may supply their values.
TAG_KEYS = {"type": ("FRAME_TYPES", "RECORD_TYPES"),
            "kind": ("ITEM_KINDS",)}

#: Registry declaration names the rule looks for in wire.py.
REGISTRY_NAME_RE = re.compile(r"^[A-Z][A-Z_]*(_TYPES|_KINDS)$")

#: Type names that cannot cross a process boundary inside a ShardTask.
UNPICKLABLE_NAMES = {
    "Callable", "Lock", "RLock", "Condition", "Event", "Semaphore",
    "Thread", "socket", "Socket", "IO", "TextIO", "BinaryIO",
    "Iterator", "Generator", "AsyncIterator", "Coroutine",
    "StreamReader", "StreamWriter", "Engine", "LRUCache",
}


@register
class WireCodecRule(Rule):
    rule_id = "wire-codec"
    title = "every codec paired, every tag registered, tasks picklable"
    rationale = (
        "In repro.serving.wire every encode_<x> must have a decode_<x> "
        "and vice versa; every frame/record/item tag literal used in the "
        "serving package must appear in exactly one of the declared "
        "*_TYPES/*_KINDS registries; and ShardTask fields must be "
        "picklable types (the process executor ships them). Catches "
        "one-directional codecs and unregistered frame tags statically."
    )

    # ------------------------------------------------------------------
    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        wire = project.module(WIRE_MODULE)
        registries: dict[str, dict[str, ast.AST]] = {}
        if wire is not None and wire.tree is not None:
            findings.extend(self._check_pairs(wire))
            registries = self._load_registries(wire)
            findings.extend(self._check_registry_disjoint(wire, registries))
        if registries:
            for module in project.in_package(SERVING_PACKAGE):
                if module.tree is not None:
                    findings.extend(
                        self._check_tag_usage(module, registries))
        evaluator = project.module(EVALUATOR_MODULE)
        if evaluator is not None and evaluator.tree is not None:
            findings.extend(self._check_shard_task(evaluator))
        return findings

    # ------------------------------------------------------------------
    # 1. encode/decode pairing
    # ------------------------------------------------------------------
    def _check_pairs(self, wire: ModuleInfo) -> Iterator[Finding]:
        assert wire.tree is not None
        directions: dict[str, dict[str, ast.AST]] = {"encode": {},
                                                     "decode": {}}
        for node in ast.walk(wire.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                match = CODEC_RE.match(node.name)
                if match:
                    directions[match.group(1)].setdefault(
                        match.group(2), node)
        for direction, other in (("encode", "decode"),
                                 ("decode", "encode")):
            for suffix, node in sorted(directions[direction].items()):
                if suffix not in directions[other]:
                    yield wire.finding(
                        node, self.rule_id,
                        f"{direction}_{suffix} has no matching "
                        f"{other}_{suffix} in {WIRE_MODULE} — the codec "
                        f"is one-directional")

    # ------------------------------------------------------------------
    # 2. tag registries
    # ------------------------------------------------------------------
    def _load_registries(
            self, wire: ModuleInfo) -> dict[str, dict[str, ast.AST]]:
        """``registry name -> {tag literal -> declaring node}``."""
        registries: dict[str, dict[str, ast.AST]] = {}
        assert wire.tree is not None
        for node in wire.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name)
                    and REGISTRY_NAME_RE.match(target.id)):
                continue
            value = node.value
            if isinstance(value, ast.Call) and isinstance(
                    value.func, ast.Name) \
                    and value.func.id == "frozenset" and value.args:
                value = value.args[0]
            tags = {s: n for n, s in const_strings(value)}
            if tags:
                registries[target.id] = tags
        return registries

    def _check_registry_disjoint(
            self, wire: ModuleInfo,
            registries: dict[str, dict[str, ast.AST]]) -> Iterator[Finding]:
        seen: dict[str, str] = {}
        for name, tags in sorted(registries.items()):
            for tag, node in sorted(tags.items()):
                if tag in seen:
                    yield wire.finding(
                        node, self.rule_id,
                        f"tag {tag!r} appears in both {seen[tag]} and "
                        f"{name} — every tag lives in exactly one "
                        f"registry")
                else:
                    seen[tag] = name

    def _check_tag_usage(
            self, module: ModuleInfo,
            registries: dict[str, dict[str, ast.AST]]) -> Iterator[Finding]:
        all_tags = {tag for tags in registries.values() for tag in tags}
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict):
                yield from self._check_dict_tags(module, node, registries)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare_tags(module, node, all_tags)

    def _check_dict_tags(
            self, module: ModuleInfo, node: ast.Dict,
            registries: dict[str, dict[str, ast.AST]]) -> Iterator[Finding]:
        for key, value in zip(node.keys, node.values):
            if not (isinstance(key, ast.Constant)
                    and key.value in TAG_KEYS):
                continue
            if not (isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                continue
            allowed_names = [name for name in TAG_KEYS[key.value]
                             if name in registries]
            allowed = {tag for name in allowed_names
                       for tag in registries[name]}
            if value.value not in allowed:
                yield module.finding(
                    value, self.rule_id,
                    f'{{"{key.value}": "{value.value}"}} uses an '
                    f"unregistered tag — add it to "
                    f"{' or '.join(TAG_KEYS[key.value])} in "
                    f"{WIRE_MODULE} (or fix the typo)")

    @staticmethod
    def _is_tag_expr(expr: ast.AST) -> bool:
        """``frame.get("type"/"kind")`` or the conventional ``kind`` var."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "get" and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and node.args[0].value in TAG_KEYS:
                return True
            if isinstance(node, ast.Name) and node.id == "kind":
                return True
        return False

    def _check_compare_tags(self, module: ModuleInfo, node: ast.Compare,
                            all_tags: set[str]) -> Iterator[Finding]:
        sides = [node.left, *node.comparators]
        if not any(self._is_tag_expr(side) for side in sides):
            return
        for side in sides:
            for literal_node, literal in const_strings(side):
                if literal not in all_tags:
                    yield module.finding(
                        literal_node, self.rule_id,
                        f"comparison against unregistered tag "
                        f"{literal!r} — every frame/record/item tag "
                        f"lives in a {WIRE_MODULE} registry")

    # ------------------------------------------------------------------
    # 3. ShardTask picklability
    # ------------------------------------------------------------------
    def _check_shard_task(self,
                          evaluator: ModuleInfo) -> Iterator[Finding]:
        assert evaluator.tree is not None
        for node in ast.walk(evaluator.tree):
            if isinstance(node, ast.ClassDef) and node.name == "ShardTask":
                for stmt in node.body:
                    if not isinstance(stmt, ast.AnnAssign):
                        continue
                    for sub in ast.walk(stmt.annotation):
                        name = None
                        if isinstance(sub, ast.Name):
                            name = sub.id
                        elif isinstance(sub, ast.Attribute):
                            name = sub.attr
                        if name in UNPICKLABLE_NAMES:
                            field = stmt.target.id if isinstance(
                                stmt.target, ast.Name) else "?"
                            yield evaluator.finding(
                                stmt, self.rule_id,
                                f"ShardTask.{field} is annotated with "
                                f"unpicklable type {name!r} — tasks "
                                f"cross the process-executor boundary "
                                f"by pickle")
