"""Static enforcement of the repo's architectural invariants.

``python -m repro.analysis src/`` parses the tree (stdlib ``ast`` only,
nothing is imported or executed), runs every registered rule, and exits
non-zero on violations.  See :mod:`repro.analysis.core` for the
framework and the suppression syntax, and ``repro.analysis.rules`` for
the invariants themselves.
"""

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Project,
    Report,
    Rule,
    all_rules,
    analyze_paths,
    analyze_project,
    load_project,
    register,
)

__all__ = [
    "Finding",
    "ModuleInfo",
    "Project",
    "Report",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_project",
    "load_project",
    "register",
]
