"""Twig minimisation: removal of redundant (sibling-subsumed) branches.

A branch ``(axis_i, c_i)`` at a node is *redundant* when a sibling branch
``(axis_j, c_j)`` implies it: every document satisfying the sibling branch
below some node also satisfies the redundant one.  Concretely

* ``axis_i = /``:  requires ``axis_j = /`` and a Boolean embedding of
  ``c_i`` into ``c_j`` mapping root to root;
* ``axis_i = //``: requires a Boolean embedding of ``c_i`` at *any* node of
  the sibling subtree (anything in the sibling subtree sits at depth >= 1).

Removing redundant branches preserves query equivalence; this is the
standard tree-pattern minimisation step and the reason the paper's learned
queries do not grow with the size of the example documents.  Branches whose
subtree contains the selected node are never removed.

The implication relation is transitive, and ties between mutually-implied
(equivalent) branches are broken by keeping the earliest, so a single sweep
per node is sound.
"""

from __future__ import annotations

from repro.twig.ast import Axis, TwigNode, TwigQuery


def bool_embeds_at(pattern: TwigNode, target: TwigNode) -> bool:
    """Boolean embedding of ``pattern`` into the subtree at ``target``.

    Root maps to root; no selected-node constraints.
    """
    memo: dict[tuple[int, int], bool] = {}

    def go(u: TwigNode, v: TwigNode) -> bool:
        key = (id(u), id(v))
        if key in memo:
            return memo[key]
        if u.is_wildcard:
            ok = True
        else:
            ok = (not v.is_wildcard) and u.label == v.label
        if ok:
            for axis, uc in u.branches:
                if axis is Axis.CHILD:
                    targets = [c for a, c in v.branches if a is Axis.CHILD]
                else:
                    targets = [d for _, c in v.branches for d in c.iter()]
                if not any(go(uc, vc) for vc in targets):
                    ok = False
                    break
        memo[key] = ok
        return ok

    return go(pattern, target)


def branch_implies(stronger: tuple[Axis, TwigNode],
                   weaker: tuple[Axis, TwigNode]) -> bool:
    """Does the ``stronger`` branch imply the ``weaker`` one at the same node?"""
    axis_s, sub_s = stronger
    axis_w, sub_w = weaker
    if axis_w is Axis.CHILD:
        return axis_s is Axis.CHILD and bool_embeds_at(sub_w, sub_s)
    # weaker is a descendant branch: any placement in the stronger subtree
    # sits at depth >= 1 below the shared parent.
    return any(bool_embeds_at(sub_w, v) for v in sub_s.iter())


def _prune_branches(
    branches: list[tuple[Axis, TwigNode]],
    protected: set[int],
) -> list[tuple[Axis, TwigNode]]:
    """Drop branches implied by a surviving sibling.

    ``protected`` holds ids of subtree roots that must survive (they contain
    the selected node).  Equivalent pairs keep the earliest branch.
    """
    removed: set[int] = set()
    for i, bi in enumerate(branches):
        if id(bi[1]) in protected:
            continue
        for j, bj in enumerate(branches):
            if i == j or j in removed:
                continue
            if branch_implies(bj, bi):
                if not branch_implies(bi, bj) or j < i:
                    removed.add(i)
                    break
    return [b for i, b in enumerate(branches) if i not in removed]


def prune_redundant_branches(
    branches: list[tuple[Axis, TwigNode]],
) -> list[tuple[Axis, TwigNode]]:
    """Public pruning entry point for Boolean branch lists (no selected node)."""
    return _prune_branches(branches, set())


def minimize(query: TwigQuery) -> TwigQuery:
    """Equivalent query with redundant branches removed, bottom-up.

    The input is not mutated.
    """
    result = query.copy()
    protected = {id(n) for _, n in result.spine()}

    def go(n: TwigNode) -> None:
        for _, child in n.branches:
            go(child)
        n.branches = _prune_branches(n.branches, protected)

    go(result.root)
    return result
