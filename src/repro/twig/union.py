"""Unions of twig queries — the paper's proposed richer language.

Section 2: "We also plan to address the intractability of the consistency
by considering richer query languages e.g., unions of twig queries for
which testing consistency is trivial but learnability remains an open
question."

Why consistency is trivial here: a twig ``q`` selects an annotated node
``(t, n)`` iff ``q`` generalises the example's *canonical query*, so every
union consistent with the positives generalises (disjunct-wise) the union
of the positives' canonical queries.  That union is therefore the least
consistent hypothesis — the examples admit *any* consistent union iff it
already avoids every negative, a polynomial check
(:func:`union_consistent`).

Learnability is the open question; :mod:`repro.learning.union_learner`
contributes the natural greedy answer (merge canonical queries while
consistency survives).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.twig.ast import TwigQuery
from repro.twig.embedding import contains
from repro.xmltree.tree import XNode, XTree


class UnionTwigQuery:
    """A finite union of twig queries (selected-node semantics)."""

    __slots__ = ("disjuncts",)

    def __init__(self, disjuncts: Iterable[TwigQuery]) -> None:
        self.disjuncts = tuple(disjuncts)
        if not self.disjuncts:
            raise ValueError("a union query needs at least one disjunct")

    def evaluate(self, tree: XTree) -> list[XNode]:
        """Union of the disjuncts' answers, in document order.

        Runs on the shared engine: one document index serves every
        disjunct (and the document-order sort), and per-disjunct answers
        are cache hits across repeated calls.
        """
        from repro.engine.core import get_engine

        doc = get_engine().document(tree)
        seen: set[int] = set()
        answers: list[XNode] = []
        for disjunct in self.disjuncts:
            for n in doc.evaluate(disjunct):
                if id(n) not in seen:
                    seen.add(id(n))
                    answers.append(n)
        answers.sort(key=doc.order_of)
        return answers

    def selects(self, tree: XTree, node: XNode) -> bool:
        return any(n is node for n in self.evaluate(tree))

    def size(self) -> int:
        return sum(d.size() for d in self.disjuncts)

    def simplified(self) -> "UnionTwigQuery":
        """Drop disjuncts contained in another disjunct."""
        kept: list[TwigQuery] = []
        for i, d in enumerate(self.disjuncts):
            absorbed = False
            for j, e in enumerate(self.disjuncts):
                if i == j:
                    continue
                if contains(d, e) and not (contains(e, d) and j > i):
                    absorbed = True
                    break
            if not absorbed:
                kept.append(d)
        return UnionTwigQuery(kept)

    def to_xpath(self) -> str:
        return " | ".join(d.to_xpath() for d in self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __repr__(self) -> str:
        return f"UnionTwigQuery({self.to_xpath()!r})"


def union_consistent(
    positives: Sequence[tuple[XTree, XNode]],
    negatives: Sequence[tuple[XTree, XNode]],
) -> UnionTwigQuery | None:
    """The paper's 'trivial' consistency test for unions of twigs.

    Returns the least consistent union (the union of the positives'
    canonical queries) or ``None`` when no union of twigs is consistent —
    which happens exactly when some positive's canonical query already
    selects a negative (every generalisation then selects it too).
    Polynomial time.
    """
    from repro.twig.generator import canonical_query_for_node

    canonicals = [canonical_query_for_node(t, n) for t, n in positives]
    candidate = UnionTwigQuery(canonicals)
    for tree, node in negatives:
        if candidate.selects(tree, node):
            return None
    return candidate
