"""Twig queries: the downward, learnable fragment of XPath.

A *twig query* is a tree pattern over node labels with two edge types —
child (``/``) and descendant (``//``) — wildcard labels (``*``), and one
distinguished *selected* node that produces the answer.  This is the query
class of Staworko & Wieczorek (ICDT 2012) that the paper builds its XML
learning story on; the *anchored* restriction (no wildcard below a ``//``
edge) is the learnable-from-positive-examples subclass.

Public surface:

* :class:`TwigQuery`, :class:`TwigNode`, :class:`Axis` — the AST.
* :func:`parse_twig` / ``TwigQuery.to_xpath`` — concrete XPath-like syntax.
* :func:`evaluate` / :func:`selects` / :func:`matches_boolean` — semantics.
* :func:`embeds` / :func:`contains` / :func:`equivalent` — containment.
* :func:`minimize` — redundant-branch elimination.
* :func:`product` — least-general-generalisation machinery for the learner.
* :func:`is_anchored` / :func:`anchor_repair` — the anchored subclass.
"""

from repro.twig.ast import Axis, TwigNode, TwigQuery
from repro.twig.parse import parse_twig
from repro.twig.semantics import (evaluate, evaluate_naive, selects,
                                  matches_boolean)
from repro.twig.embedding import embeds, contains, equivalent, contains_exact
from repro.twig.normalize import minimize
from repro.twig.product import product
from repro.twig.anchored import is_anchored, anchor_repair, universal_query
from repro.twig.union import UnionTwigQuery, union_consistent
from repro.twig.generator import random_twig, canonical_query_for_node

__all__ = [
    "Axis",
    "TwigNode",
    "TwigQuery",
    "parse_twig",
    "evaluate",
    "evaluate_naive",
    "selects",
    "matches_boolean",
    "embeds",
    "contains",
    "contains_exact",
    "equivalent",
    "minimize",
    "product",
    "is_anchored",
    "anchor_repair",
    "universal_query",
    "UnionTwigQuery",
    "union_consistent",
    "random_twig",
    "canonical_query_for_node",
]
