"""The anchored subclass of twig queries and the repair into it.

A twig query is *anchored* when no wildcard node hangs below a descendant
edge: every ``//`` edge (including the virtual edge from the document root
when the root axis is ``//``) targets a labelled node.  Wildcards reached
by child edges are allowed (``/a/*/b`` is anchored; ``/a//*`` is not).
Staworko & Wieczorek proved this subclass learnable from positive examples;
products of anchored queries may momentarily leave the class, so the
learner repairs them with :func:`anchor_repair`, the least anchored
generalisation:

* a ``//``-edge to a *leaf* wildcard is replaced by a ``/``-edge wildcard
  (equivalent: "has a descendant" iff "has a child");
* a ``//``-edge to an *internal* wildcard dissolves the wildcard and
  reattaches its branches with ``//`` edges (a sound generalisation);
* a ``//``-rooted wildcard root dissolves similarly; when that is
  impossible (the wildcard is the selected node) the repair falls back to
  the :func:`universal_query` ``//*`` and reports inexactness.
"""

from __future__ import annotations

from repro.twig.ast import Axis, TwigNode, TwigQuery


def is_anchored(query: TwigQuery) -> bool:
    """No wildcard below a ``//`` edge (nor a ``//``-rooted wildcard root)."""
    if query.root_axis is Axis.DESC and query.root.is_wildcard:
        return False
    return all(
        not child.is_wildcard
        for n in query.nodes()
        for axis, child in n.branches
        if axis is Axis.DESC
    )


def universal_query() -> TwigQuery:
    """The top of the generalisation lattice: ``//*`` (selects every node)."""
    root = TwigNode("*")
    return TwigQuery(Axis.DESC, root, root)


def _repair_node(n: TwigNode, selected: TwigNode) -> bool:
    """Repair ``//``-to-wildcard edges below ``n``.  Returns False when the
    selected node itself blocks the repair."""
    changed = True
    while changed:
        changed = False
        new_branches: list[tuple[Axis, TwigNode]] = []
        for axis, child in n.branches:
            if axis is Axis.DESC and child.is_wildcard:
                if child is selected:
                    return False
                if not child.branches:
                    # "has a descendant" == "has a child".
                    new_branches.append((Axis.CHILD, TwigNode("*")))
                else:
                    # Dissolve the wildcard; grandchildren sat at depth >= 2,
                    # // keeps them at depth >= 1 — a sound generalisation.
                    new_branches.extend(
                        (Axis.DESC, grandchild)
                        for _, grandchild in child.branches
                    )
                changed = True
            else:
                new_branches.append((axis, child))
        n.branches = new_branches
    return all(_repair_node(child, selected) for _, child in n.branches)


def anchor_repair(query: TwigQuery) -> tuple[TwigQuery, bool]:
    """Return ``(anchored_query, exact)``.

    ``anchored_query`` generalises ``query`` and lies in the anchored class.
    ``exact`` is False when the repair had to fall back to the universal
    query (the generalisation may then be much coarser).
    """
    if is_anchored(query):
        return query, True
    repaired = query.copy()

    if not _repair_node(repaired.root, repaired.selected):
        return universal_query(), False

    # Root repair: dissolve a //-rooted wildcard root.
    while repaired.root_axis is Axis.DESC and repaired.root.is_wildcard:
        root = repaired.root
        if root is repaired.selected:
            return universal_query(), False
        if not root.branches:
            # "//*" with no constraints selecting a non-existent node cannot
            # happen (selected is inside the pattern), keep defensive.
            return universal_query(), False
        if len(root.branches) == 1:
            _, child = root.branches[0]
            repaired = TwigQuery(Axis.DESC, child, repaired.selected)
        else:
            # Keep only the branch leading to the selected node; dropping
            # the sibling filters is a sound generalisation.
            keeper = None
            for _, child in root.branches:
                if child.contains_node(repaired.selected):
                    keeper = child
                    break
            if keeper is None:
                return universal_query(), False
            repaired = TwigQuery(Axis.DESC, keeper, repaired.selected)
        if not _repair_node(repaired.root, repaired.selected):
            return universal_query(), False

    return repaired, True
