"""Random twig queries and canonical queries of annotated examples.

:func:`canonical_query_for_node` is the learner's starting point: the most
specific twig query selecting a given node of a given document is the
document itself read as a pattern (all child edges, all labels concrete)
with that node selected.

:func:`random_twig` draws goal queries for tests and benchmarks: a random
spine with random filter branches, always anchored, always satisfiable.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.twig.ast import Axis, TwigNode, TwigQuery
from repro.util.rng import RngLike, make_rng
from repro.xmltree.tree import XNode, XTree


def canonical_query_for_node(tree: XTree, target: XNode) -> TwigQuery:
    """The most specific twig query selecting ``target`` in ``tree``."""
    selected_holder: list[TwigNode] = []

    def build(n: XNode) -> TwigNode:
        t = TwigNode(n.label)
        if n is target:
            selected_holder.append(t)
        t.branches = [(Axis.CHILD, build(c)) for c in n.children]
        return t

    root = build(tree.root)
    if not selected_holder:
        raise ValueError("target node does not belong to the tree")
    return TwigQuery(Axis.CHILD, root, selected_holder[0])


def random_twig(
    labels: Sequence[str],
    *,
    spine_length: int = 3,
    filter_probability: float = 0.4,
    desc_probability: float = 0.3,
    wildcard_probability: float = 0.1,
    max_filter_depth: int = 2,
    rng: RngLike = None,
) -> TwigQuery:
    """Draw a random anchored twig query over ``labels``.

    The spine has ``spine_length`` nodes; each spine node grows a filter
    branch with probability ``filter_probability``.  Descendant edges appear
    with probability ``desc_probability`` and wildcards (only ever below
    child edges, to stay anchored) with ``wildcard_probability``.
    """
    r = make_rng(rng)
    if spine_length < 1:
        raise ValueError("spine_length must be >= 1")

    def pick_label(allow_wildcard: bool) -> str:
        if allow_wildcard and r.random() < wildcard_probability:
            return "*"
        return r.choice(list(labels))

    def pick_axis() -> Axis:
        return Axis.DESC if r.random() < desc_probability else Axis.CHILD

    def grow_filter(depth: int, incoming: Axis) -> TwigNode:
        n = TwigNode(pick_label(allow_wildcard=incoming is Axis.CHILD))
        if depth < max_filter_depth and r.random() < filter_probability:
            axis = pick_axis()
            n.add(axis, grow_filter(depth + 1, axis))
        return n

    root_axis = pick_axis()
    spine: list[TwigNode] = []
    incoming = root_axis
    for _ in range(spine_length):
        node = TwigNode(pick_label(allow_wildcard=incoming is Axis.CHILD))
        spine.append(node)
        incoming = pick_axis()
    for idx in range(len(spine) - 1):
        axis = Axis.DESC if r.random() < desc_probability else Axis.CHILD
        # Keep anchoredness: descendant edges must target labelled nodes.
        if spine[idx + 1].is_wildcard:
            axis = Axis.CHILD
        spine[idx].add(axis, spine[idx + 1])
    if spine[0].is_wildcard and root_axis is Axis.DESC:
        root_axis = Axis.CHILD
    for node in spine:
        if r.random() < filter_probability:
            axis = pick_axis()
            node.branches.insert(
                r.randrange(len(node.branches) + 1),
                (axis, grow_filter(1, axis)),
            )
    return TwigQuery(root_axis, spine[0], spine[-1])
