"""Twig query evaluation over :class:`~repro.xmltree.tree.XTree` documents.

Semantics: an *embedding* of a query ``q`` into a tree ``t`` maps every
query node to a tree node such that labels are compatible (``*`` matches
anything), child edges map to parent/child pairs, descendant edges map to
proper ancestor/descendant pairs, and the query root maps to the document
root when the root axis is ``/`` (anywhere when ``//``).  The answer of the
query is the set of images of the selected node over all embeddings.

The evaluation is the classic two-pass dynamic programme:

1. *Bottom-up*: for each query node, the set of tree nodes at which its
   subtree pattern embeds (``O(|q| * |t| * depth)``).
2. *Top-down*: restrict each candidate set to nodes reachable within a full
   embedding; the answer is the restricted set of the selected node.

Both passes exploit that tree patterns decompose: sibling branches embed
independently, so existence of a full embedding factorises exactly.

:func:`evaluate` routes through the shared :mod:`repro.engine`, which
builds the document index once per tree and memoises answers across the
repeated evaluations interactive learners perform; :func:`evaluate_naive`
keeps the original single-shot path (index rebuilt per call) as the
obviously-correct reference for property tests and cold benchmarks.
"""

from __future__ import annotations

from repro.twig.ast import Axis, TwigNode, TwigQuery
from repro.xmltree.tree import XNode, XTree


class _TreeIndex:
    """Flat index over a document: ids, parents, ancestor lists."""

    def __init__(self, tree: XTree) -> None:
        self.tree = tree
        self.nodes: list[XNode] = list(tree.nodes())
        self.index: dict[int, int] = {id(n): i for i, n in enumerate(self.nodes)}
        self.parent: list[int | None] = [None] * len(self.nodes)
        self.children: list[list[int]] = [[] for _ in self.nodes]
        for i, n in enumerate(self.nodes):
            for child in n.children:
                j = self.index[id(child)]
                self.parent[j] = i
                self.children[i].append(j)

    def ancestors(self, i: int) -> list[int]:
        """Proper ancestors of node ``i`` (nearest first)."""
        out: list[int] = []
        p = self.parent[i]
        while p is not None:
            out.append(p)
            p = self.parent[p]
        return out

    def descendants(self, i: int) -> list[int]:
        """Proper descendants of node ``i``."""
        out: list[int] = []
        stack = list(self.children[i])
        while stack:
            j = stack.pop()
            out.append(j)
            stack.extend(self.children[j])
        return out


def _label_matches(query_label: str, tree_label: str) -> bool:
    return query_label == "*" or query_label == tree_label


def _bottom_up(query_root: TwigNode, idx: _TreeIndex) -> dict[int, set[int]]:
    """Candidate sets: query node id -> tree indices where its subtree embeds."""
    cand: dict[int, set[int]] = {}
    # Post-order over the query.
    order: list[TwigNode] = []
    stack = [query_root]
    while stack:
        n = stack.pop()
        order.append(n)
        stack.extend(child for _, child in n.branches)
    for qnode in reversed(order):
        base = {
            i for i, t in enumerate(idx.nodes)
            if _label_matches(qnode.label, t.label)
        }
        for axis, qchild in qnode.branches:
            child_cand = cand[id(qchild)]
            if axis is Axis.CHILD:
                allowed = {idx.parent[j] for j in child_cand
                           if idx.parent[j] is not None}
            else:
                allowed = set()
                for j in child_cand:
                    allowed.update(idx.ancestors(j))
            base &= allowed
            if not base:
                break
        cand[id(qnode)] = base
    return cand


def _top_down(query: TwigQuery, idx: _TreeIndex,
              cand: dict[int, set[int]]) -> dict[int, set[int]]:
    """Reachable sets: query node id -> tree indices usable in full embeddings."""
    reach: dict[int, set[int]] = {}
    root_cand = cand[id(query.root)]
    if query.root_axis is Axis.CHILD:
        root_reach = root_cand & {idx.index[id(idx.tree.root)]}
    else:
        root_reach = set(root_cand)
    reach[id(query.root)] = root_reach

    stack: list[TwigNode] = [query.root]
    while stack:
        qnode = stack.pop()
        here = reach[id(qnode)]
        for axis, qchild in qnode.branches:
            if axis is Axis.CHILD:
                allowed: set[int] = set()
                for i in here:
                    allowed.update(idx.children[i])
            else:
                allowed = set()
                for i in here:
                    allowed.update(idx.descendants(i))
            reach[id(qchild)] = cand[id(qchild)] & allowed
            stack.append(qchild)
    return reach


def evaluate(query: TwigQuery, tree: XTree) -> list[XNode]:
    """All document nodes selected by ``query`` on ``tree`` (document order).

    Served by the shared engine: the tree is indexed once and repeated
    evaluations of the same (canonical) query are cache hits.  After an
    in-place mutation, call ``tree.invalidate()`` (as the parent-map cache
    already required) — the engine detects the version bump and reindexes.
    """
    from repro.engine.core import get_engine

    return get_engine().evaluate_twig(query, tree)


def evaluate_naive(query: TwigQuery, tree: XTree) -> list[XNode]:
    """Single-shot evaluation, index rebuilt per call (the reference path)."""
    idx = _TreeIndex(tree)
    cand = _bottom_up(query.root, idx)
    if not cand[id(query.root)]:
        return []
    reach = _top_down(query, idx, cand)
    answer = sorted(reach[id(query.selected)])
    return [idx.nodes[i] for i in answer]


def selects(query: TwigQuery, tree: XTree, target: XNode) -> bool:
    """Does ``query`` select precisely the node ``target`` of ``tree``?"""
    return any(n is target for n in evaluate(query, tree))


def matches_boolean(query: TwigQuery, tree: XTree) -> bool:
    """Boolean satisfaction: does any embedding of ``query`` exist?"""
    return bool(evaluate(query, tree))
