"""Parser for the XPath-like concrete syntax of twig queries.

Grammar (whitespace-insensitive)::

    query   :=  ('/' | '//') step (('/' | '//') step)*
    step    :=  name filter*
    filter  :=  '[' rel ']'
    rel     :=  ('.//')? step (('/' | '//') step)*
    name    :=  '*' | [A-Za-z_@][A-Za-z0-9_.:-]*

The final step of the outer path is the selected node.  Filters starting
with ``.//`` attach via a descendant edge; plain filters via a child edge.
Examples::

    /site/people/person[profile/gender][profile/age]/name
    //closed_auction//keyword
    /a/*[b//c]/d
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.twig.ast import Axis, TwigNode, TwigQuery

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_@")
_NAME_CHARS = _NAME_START | set("0123456789.:-")


class _Cursor:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def eof(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek(self, token: str) -> bool:
        self.skip_ws()
        return self.text.startswith(token, self.pos)

    def take(self, token: str) -> bool:
        if self.peek(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.take(token):
            raise ParseError(f"expected {token!r}", position=self.pos)

    def read_name(self) -> str:
        self.skip_ws()
        if self.take("*"):
            return "*"
        start = self.pos
        if self.pos >= len(self.text) or self.text[self.pos] not in _NAME_START:
            raise ParseError("expected a label or '*'", position=self.pos)
        self.pos += 1
        while (self.pos < len(self.text)
               and self.text[self.pos] in _NAME_CHARS):
            self.pos += 1
        return self.text[start:self.pos]


def _parse_axis(cursor: _Cursor) -> Axis | None:
    # '//' must be tried before '/'.
    if cursor.take("//"):
        return Axis.DESC
    if cursor.take("/"):
        return Axis.CHILD
    return None


def _parse_step(cursor: _Cursor) -> TwigNode:
    label = cursor.read_name()
    step = TwigNode(label)
    while cursor.peek("["):
        cursor.expect("[")
        axis = Axis.DESC if cursor.take(".//") else Axis.CHILD
        child = _parse_rel_path(cursor)
        step.add(axis, child)
        cursor.expect("]")
    return step


def _parse_rel_path(cursor: _Cursor) -> TwigNode:
    head = _parse_step(cursor)
    tail = head
    while True:
        # Stop at ']' or end; otherwise an axis continues the path.
        if cursor.peek("]") or cursor.eof():
            return head
        axis = _parse_axis(cursor)
        if axis is None:
            return head
        nxt = _parse_step(cursor)
        tail.add(axis, nxt)
        tail = nxt


def parse_twig(text: str) -> TwigQuery:
    """Parse ``text`` into a :class:`TwigQuery`.

    Raises :class:`~repro.errors.ParseError` on malformed syntax.
    """
    cursor = _Cursor(text)
    root_axis = _parse_axis(cursor)
    if root_axis is None:
        raise ParseError("query must start with '/' or '//'", position=0)
    root = _parse_step(cursor)
    tail = root
    while not cursor.eof():
        axis = _parse_axis(cursor)
        if axis is None:
            raise ParseError("expected '/', '//' or end of query",
                             position=cursor.pos)
        nxt = _parse_step(cursor)
        tail.add(axis, nxt)
        tail = nxt
    return TwigQuery(root_axis, root, tail)
