"""Products of twig queries — the learner's generalisation engine.

The *product* of two unary twig queries is a query that selects, on every
document, (a superset containing) the intersection of what either factor
selects — the least-general-generalisation (lgg) machinery of Staworko &
Wieczorek's positive-example learner.

Construction
------------
A unary query decomposes into its *spine* (the root-to-selected path) and
Boolean filter branches hanging off spine nodes.  The product of two queries
is assembled from

1. a monotone *alignment* of the two spines (which spine nodes pair up) —
   paired nodes take the common label (else ``*``); skipped nodes dissolve
   into ``//`` edges; and
2. at every matched pair, the *Boolean product* of the off-spine forests.

The Boolean product of patterns ``u`` and ``v`` pairs children with
children (child axis survives only when both edges are child edges) and,
to capture generalisations that skip intermediate nodes, pairs each child
of one side with each strictly-deeper descendant of the other (descendant
axis).  Pairs that are deep on *both* sides are implied by compositions of
the above and therefore omitted.  Redundant branches are pruned eagerly
(see :mod:`repro.twig.normalize`) to keep intermediate patterns small.

Different spine alignments yield incomparable minimal generalisations —
this is exactly why consistency with negative examples is NP-complete for
twigs while learning from positives alone is tractable.  :func:`product`
returns the minimum-cost alignment (a deterministic, most-specific-first
heuristic); :func:`iter_products` enumerates alignments lazily in cost
order for the negative-example search.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from repro.twig.ast import Axis, TwigNode, TwigQuery, combine_axes
from repro.twig.normalize import prune_redundant_branches

# Alignment cost tuning: a wildcard spine node is worse than a descendant
# edge, which is worse than dropping one off-spine filter set.
_WILDCARD_COST = 3
_SKIP_COST = 1
_DESC_COST = 1

Alignment = list[tuple[int, int]]


def _copy_node(n: TwigNode) -> TwigNode:
    clone = TwigNode(n.label)
    clone.branches = [(axis, _copy_node(c)) for axis, c in n.branches]
    return clone


def _product_label(a: str, b: str) -> str:
    return a if a == b else "*"


class _BoolProducts:
    """Memoised Boolean products of subpattern pairs.

    ``practical=True`` pairs only equal labels (the mode used when examples
    are whole documents: mismatched-label pairs produce ``*`` branches that
    are almost always pruned anyway, and skipping them keeps the product
    from exploding).  ``practical=False`` is the exact construction.
    """

    def __init__(self, practical: bool) -> None:
        self.practical = practical
        self._memo: dict[tuple[int, int], TwigNode] = {}

    def _labels_pair(self, a: str, b: str) -> bool:
        if not self.practical:
            return True
        return a == b

    def node(self, u: TwigNode, v: TwigNode) -> TwigNode:
        key = (id(u), id(v))
        cached = self._memo.get(key)
        if cached is not None:
            return _copy_node(cached)
        result = TwigNode(_product_label(u.label, v.label))
        branches: list[tuple[Axis, TwigNode]] = []
        v_deep = [d for _, vc in v.branches for d in _deep_nodes(vc)]
        u_deep = [d for _, uc in u.branches for d in _deep_nodes(uc)]
        for a_axis, uc in u.branches:
            for b_axis, vc in v.branches:
                if self._labels_pair(uc.label, vc.label):
                    branches.append(
                        (combine_axes(a_axis, b_axis), self.node(uc, vc)))
            for w in v_deep:
                if self._labels_pair(uc.label, w.label):
                    branches.append((Axis.DESC, self.node(uc, w)))
        for _, vc in v.branches:
            for w in u_deep:
                if self._labels_pair(w.label, vc.label):
                    branches.append((Axis.DESC, self.node(w, vc)))
        result.branches = prune_redundant_branches(branches)
        self._memo[key] = result
        return _copy_node(result)


def _deep_nodes(n: TwigNode) -> list[TwigNode]:
    """Nodes at depth >= 2 below the parent of ``n`` (i.e. inside ``n``)."""
    out: list[TwigNode] = []
    for _, child in n.branches:
        out.append(child)
        out.extend(_deep_nodes(child))
    return out


# ---------------------------------------------------------------------------
# Spine alignments
# ---------------------------------------------------------------------------


def _spine_parts(q: TwigQuery) -> tuple[list[Axis], list[TwigNode]]:
    spine = q.spine()
    return [axis for axis, _ in spine], [n for _, n in spine]


def _start_states(p: TwigQuery, q: TwigQuery,
                  k: int, m: int) -> list[tuple[int, tuple[int, int]]]:
    """Initial matched pairs with their cost.

    Any pair ``(i, j)`` can start an alignment: the product's root axis
    becomes ``//`` (a spine node sits at *some* depth, and "any depth"
    generalises both factors), at the price of the skipped prefixes.
    ``(0, 0)`` keeps the combined root axis and costs nothing.
    """
    starts = [(0, (0, 0))]
    starts.extend(
        (_SKIP_COST * (i + j) + _DESC_COST, (i, j))
        for i in range(k + 1)
        for j in range(m + 1)
        if (i, j) != (0, 0)
    )
    return starts


def _pair_cost(label_a: str, label_b: str) -> int:
    return 0 if label_a == label_b else _WILDCARD_COST


def _move_cost(di: int, dj: int, child_edge: bool) -> int:
    skip = (di - 1) + (dj - 1)
    return _SKIP_COST * skip + (0 if child_edge else _DESC_COST)


def iter_alignments(p: TwigQuery, q: TwigQuery) -> Iterator[
        tuple[int, Alignment]]:
    """Yield ``(cost, alignment)`` pairs in non-decreasing cost order.

    An alignment is a strictly increasing sequence of index pairs into the
    two spines, ending at the selected pair.  Uniform-cost search; the
    number of alignments is exponential in spine length, so consume lazily.
    """
    p_axes, p_nodes = _spine_parts(p)
    q_axes, q_nodes = _spine_parts(q)
    k, m = len(p_nodes) - 1, len(q_nodes) - 1

    counter = 0
    heap: list[tuple[int, int, tuple[int, int], tuple]] = []
    for cost, (i, j) in _start_states(p, q, k, m):
        cost += _pair_cost(p_nodes[i].label, q_nodes[j].label)
        counter += 1
        heapq.heappush(heap, (cost, counter, (i, j), ((i, j),)))

    while heap:
        cost, _, (i, j), path = heapq.heappop(heap)
        if i == k and j == m:
            yield cost, list(path)
            continue
        if i == k or j == m:
            continue  # dead end: one spine exhausted before the other
        for ni in range(i + 1, k + 1):
            for nj in range(j + 1, m + 1):
                if ni > i + 1 and nj > j + 1:
                    continue  # both-deep jumps are refinable; skip them
                child_edge = (
                    ni == i + 1 and nj == j + 1
                    and p_axes[ni] is Axis.CHILD and q_axes[nj] is Axis.CHILD
                )
                step = (_move_cost(ni - i, nj - j, child_edge)
                        + _pair_cost(p_nodes[ni].label, q_nodes[nj].label))
                counter += 1
                heapq.heappush(heap, (cost + step, counter, (ni, nj),
                                      path + ((ni, nj),)))


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------


def _off_spine(spine_node: TwigNode,
               next_spine: TwigNode | None) -> list[tuple[Axis, TwigNode]]:
    return [(axis, c) for axis, c in spine_node.branches
            if next_spine is None or c is not next_spine]


def _assemble(p: TwigQuery, q: TwigQuery, alignment: Alignment,
              products: _BoolProducts) -> TwigQuery:
    p_axes, p_nodes = _spine_parts(p)
    q_axes, q_nodes = _spine_parts(q)
    k, m = len(p_nodes) - 1, len(q_nodes) - 1

    built: list[TwigNode] = []
    for idx, (i, j) in enumerate(alignment):
        pn, qn = p_nodes[i], q_nodes[j]
        node = TwigNode(_product_label(pn.label, qn.label))
        # The spine continuation out of pn is always the branch towards
        # p_nodes[i+1] (even when the alignment skips it, that subtree is
        # consumed by the // edge); it is excluded from the filter forest.
        last = idx + 1 >= len(alignment)
        p_spine_child = None if last else p_nodes[i + 1]
        q_spine_child = None if last else q_nodes[j + 1]
        off_p = _off_spine(pn, p_spine_child)
        off_q = _off_spine(qn, q_spine_child)
        filters: list[tuple[Axis, TwigNode]] = []
        for a_axis, uc in off_p:
            for b_axis, vc in off_q:
                if products._labels_pair(uc.label, vc.label):
                    filters.append(
                        (combine_axes(a_axis, b_axis), products.node(uc, vc)))
        for _, uc in off_p:
            for _, vc in off_q:
                for w in _deep_nodes(vc):
                    if products._labels_pair(uc.label, w.label):
                        filters.append((Axis.DESC, products.node(uc, w)))
                for w in _deep_nodes(uc):
                    if products._labels_pair(w.label, vc.label):
                        filters.append((Axis.DESC, products.node(w, vc)))
        node.branches = prune_redundant_branches(filters)
        built.append(node)

    # Link consecutive spine nodes.
    for idx in range(len(alignment) - 1):
        (i, j), (ni, nj) = alignment[idx], alignment[idx + 1]
        child_edge = (ni == i + 1 and nj == j + 1
                      and p_axes[ni] is Axis.CHILD and q_axes[nj] is Axis.CHILD)
        axis = Axis.CHILD if child_edge else Axis.DESC
        built[idx].branches.append((axis, built[idx + 1]))

    i0, j0 = alignment[0]
    if i0 == 0 and j0 == 0:
        root_axis = combine_axes(p.root_axis, q.root_axis)
    else:
        root_axis = Axis.DESC
    return TwigQuery(root_axis, built[0], built[-1])


def product(p: TwigQuery, q: TwigQuery, *,
            practical: bool = True) -> TwigQuery:
    """The minimum-cost generalisation of ``p`` and ``q``.

    ``practical=True`` (default) pairs only equal labels inside filters —
    the mode intended for learning from whole-document examples.  Pass
    ``practical=False`` for the exhaustive Boolean product on small queries.
    """
    products = _BoolProducts(practical)
    for _, alignment in iter_alignments(p, q):
        return _assemble(p, q, alignment, products)
    raise AssertionError("spine alignment search yielded no alignment")


def iter_products(p: TwigQuery, q: TwigQuery, *, practical: bool = True,
                  limit: int | None = None) -> Iterator[TwigQuery]:
    """Generalisations of ``p`` and ``q`` in increasing cost order.

    At most ``limit`` results (``None`` = unbounded).  Used by the
    consistency-with-negatives search, which needs alternatives when the
    cheapest generalisation selects a negative example.
    """
    products = _BoolProducts(practical)
    count = 0
    for _, alignment in iter_alignments(p, q):
        yield _assemble(p, q, alignment, products)
        count += 1
        if limit is not None and count >= limit:
            return
