"""Pattern-to-pattern embeddings and twig containment.

``embeds(q2, q1)`` decides whether there is a homomorphism from query ``q2``
into query ``q1`` (labels of ``q2`` match, child edges map to child edges,
descendant edges map to downward paths of length >= 1, and the selected node
of ``q2`` lands on the selected node of ``q1``).  An embedding witnesses
containment ``q1 ⊆ q2`` (every tree node selected by ``q1`` is selected by
``q2``): compose the embedding with any embedding of ``q1`` into a document.

The homomorphism test is **sound but not complete** for containment in the
presence of ``//`` and ``*`` (Miklau & Suciu); :func:`contains_exact`
additionally checks the canonical models of ``q1`` (descendant edges
instantiated by chains of a fresh label, wildcards instantiated by the fresh
label) up to the length bound ``|q2| + 1``, which is exact for this
fragment.  The exact test is exponential in the number of descendant edges
and intended for small queries (tests, minimisation audits).
"""

from __future__ import annotations

import itertools

from repro.twig.ast import Axis, TwigNode, TwigQuery
from repro.twig.semantics import evaluate
from repro.xmltree.tree import XNode, XTree

_FRESH = "__z__"  # Label assumed not to occur in any query under test.


# ---------------------------------------------------------------------------
# Homomorphism (sound containment)
# ---------------------------------------------------------------------------


def _desc_targets(n: TwigNode) -> list[TwigNode]:
    """All nodes strictly below ``n`` (targets for a descendant edge)."""
    out: list[TwigNode] = []
    for _, child in n.branches:
        out.append(child)
        out.extend(_desc_targets(child))
    return out


def embeds(q2: TwigQuery, q1: TwigQuery) -> bool:
    """Is there an embedding of ``q2`` into ``q1``?  Witnesses ``q1 ⊆ q2``."""
    memo: dict[tuple[int, int], bool] = {}

    def node_ok(u2: TwigNode, u1: TwigNode) -> bool:
        # q2's selected node must land on q1's selected node; other q2
        # nodes may map anywhere (including onto q1's selected node).
        if u2 is q2.selected and u1 is not q1.selected:
            return False
        if u2.is_wildcard:
            return True
        return (not u1.is_wildcard) and u2.label == u1.label

    def go(u2: TwigNode, u1: TwigNode) -> bool:
        key = (id(u2), id(u1))
        if key in memo:
            return memo[key]
        memo[key] = False  # cycle guard (trees: unreachable, but safe)
        ok = node_ok(u2, u1)
        if ok:
            for axis, v2 in u2.branches:
                if axis is Axis.CHILD:
                    targets = [c for a, c in u1.branches if a is Axis.CHILD]
                else:
                    targets = _desc_targets(u1)
                if not any(go(v2, v1) for v1 in targets):
                    ok = False
                    break
        memo[key] = ok
        return ok

    if q2.root_axis is Axis.CHILD:
        if q1.root_axis is not Axis.CHILD:
            return False
        return go(q2.root, q1.root)
    # q2 root may map anywhere in q1; if q1 is //-rooted, any q1 node works,
    # and if q1 is /-rooted its nodes sit at fixed depths — also fine.
    return any(go(q2.root, u1) for u1 in q1.nodes())


def contains(q1: TwigQuery, q2: TwigQuery) -> bool:
    """Sound containment test: ``True`` implies ``q1 ⊆ q2``."""
    return embeds(q2, q1)


# ---------------------------------------------------------------------------
# Canonical models (exact containment for small queries)
# ---------------------------------------------------------------------------


def _instantiate(q1: TwigQuery, lengths: dict[int, int],
                 root_prefix: int) -> tuple[XTree, XNode]:
    """Build a canonical document of ``q1``.

    ``lengths[id(node)]`` gives the chain length substituted for the
    descendant edge *into* that node (1 = direct child); ``root_prefix``
    prepends that many fresh nodes above the pattern root when the root axis
    is ``//``.  Wildcards become the fresh label.  Returns the document and
    the image of the selected node.
    """
    selected_image: list[XNode] = []

    def build(n: TwigNode) -> XNode:
        label = _FRESH if n.is_wildcard else n.label
        x = XNode(label)
        if n is q1.selected:
            selected_image.append(x)
        for axis, child in n.branches:
            sub = build(child)
            if axis is Axis.CHILD:
                x.add(sub)
            else:
                chain = sub
                for _ in range(lengths[id(child)] - 1):
                    chain = XNode(_FRESH, [chain])
                x.add(chain)
        return x

    core = build(q1.root)
    top = core
    for _ in range(root_prefix):
        top = XNode(_FRESH, [top])
    return XTree(top), selected_image[0]


def _desc_edges(q: TwigQuery) -> list[TwigNode]:
    return [child for n in q.nodes() for axis, child in n.branches
            if axis is Axis.DESC]


def contains_exact(q1: TwigQuery, q2: TwigQuery) -> bool:
    """Exact containment ``q1 ⊆ q2`` via canonical models.

    Exponential in the number of descendant edges of ``q1``; use on small
    queries only.  Chain lengths range over ``1 .. |q2|+1`` which suffices
    for the ``{/, //, [], *}`` fragment.
    """
    bound = q2.size() + 1
    desc_nodes = _desc_edges(q1)
    root_prefix_options = (
        range(0, bound + 1) if q1.root_axis is Axis.DESC else (0,)
    )
    for root_prefix in root_prefix_options:
        for combo in itertools.product(range(1, bound + 1),
                                       repeat=len(desc_nodes)):
            lengths = {id(n): L for n, L in zip(desc_nodes, combo)}
            doc, target = _instantiate(q1, lengths, root_prefix)
            if not any(sel is target for sel in evaluate(q2, doc)):
                return False
    return True


def equivalent(q1: TwigQuery, q2: TwigQuery, *, exact: bool = False) -> bool:
    """Mutual containment.  ``exact=True`` uses canonical models."""
    if exact:
        return contains_exact(q1, q2) and contains_exact(q2, q1)
    return contains(q1, q2) and contains(q2, q1)
