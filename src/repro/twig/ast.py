"""Abstract syntax for twig queries.

A query is a rooted tree of :class:`TwigNode` objects.  Each edge carries an
:class:`Axis` (child or descendant); the query as a whole carries a *root
axis* describing how its root attaches to the document root (``/`` = the
root of the pattern **is** the document root element, ``//`` = the root of
the pattern may match any node).  Exactly one node is *selected* — its
matches form the query answer.

Nodes are mutable (the learner rewrites patterns heavily); queries expose
``copy()`` that preserves which node is selected.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator
from typing import Optional

WILDCARD = "*"


class Axis(enum.Enum):
    """Edge type: ``CHILD`` = parent/child, ``DESC`` = proper descendant."""

    CHILD = "/"
    DESC = "//"

    def __str__(self) -> str:
        return self.value


def combine_axes(a: "Axis", b: "Axis") -> "Axis":
    """The most specific axis implied by both ``a`` and ``b``.

    Used by the product construction: a child edge in both patterns stays a
    child edge; any descendant involvement generalises to descendant.
    """
    if a is Axis.CHILD and b is Axis.CHILD:
        return Axis.CHILD
    return Axis.DESC


class TwigNode:
    """A pattern node: a label (or ``*``) plus axis-labelled child branches."""

    __slots__ = ("label", "branches")

    def __init__(
        self,
        label: str,
        branches: Optional[list[tuple[Axis, "TwigNode"]]] = None,
    ) -> None:
        if not label:
            raise ValueError("twig node label must be non-empty (use '*')")
        self.label = label
        self.branches: list[tuple[Axis, TwigNode]] = list(branches or [])

    @property
    def is_wildcard(self) -> bool:
        return self.label == WILDCARD

    def add(self, axis: Axis, child: "TwigNode") -> "TwigNode":
        self.branches.append((axis, child))
        return child

    def iter(self) -> Iterator["TwigNode"]:
        """This node and all descendants, pre-order."""
        stack = [self]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(child for _, child in reversed(current.branches))

    def size(self) -> int:
        return sum(1 for _ in self.iter())

    def depth(self) -> int:
        if not self.branches:
            return 1
        return 1 + max(child.depth() for _, child in self.branches)

    def contains_node(self, target: "TwigNode") -> bool:
        return any(n is target for n in self.iter())

    def copy_with_map(self) -> tuple["TwigNode", dict[int, "TwigNode"]]:
        """Deep copy; also return a map ``id(original) -> copy``."""
        mapping: dict[int, TwigNode] = {}

        def go(n: TwigNode) -> TwigNode:
            clone = TwigNode(n.label)
            mapping[id(n)] = clone
            clone.branches = [(axis, go(child)) for axis, child in n.branches]
            return clone

        return go(self), mapping

    def canonical(self) -> tuple:
        """Hashable form, invariant under branch permutation."""
        forms = sorted((axis.value, child.canonical())
                       for axis, child in self.branches)
        return (self.label, tuple(forms))

    def __repr__(self) -> str:
        return f"<TwigNode {self.label!r} {len(self.branches)} branches>"


class TwigQuery:
    """A unary twig query: root axis, pattern root, and selected node."""

    __slots__ = ("root_axis", "root", "selected")

    def __init__(self, root_axis: Axis, root: TwigNode,
                 selected: Optional[TwigNode] = None) -> None:
        self.root_axis = root_axis
        self.root = root
        self.selected = selected if selected is not None else root
        if not root.contains_node(self.selected):
            raise ValueError("selected node must belong to the query pattern")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[TwigNode]:
        return self.root.iter()

    def size(self) -> int:
        return self.root.size()

    def depth(self) -> int:
        return self.root.depth()

    def parent_map(self) -> dict[int, tuple[TwigNode, Axis] | None]:
        """Map ``id(node) -> (parent, axis)`` (``None`` for the root)."""
        parents: dict[int, tuple[TwigNode, Axis] | None] = {id(self.root): None}
        for n in self.root.iter():
            for axis, child in n.branches:
                parents[id(child)] = (n, axis)
        return parents

    def spine(self) -> list[tuple[Axis, TwigNode]]:
        """The path from the root to the selected node.

        Returns ``[(root_axis, root), (axis1, n1), ..., (axisk, selected)]``.
        """
        parents = self.parent_map()
        path: list[tuple[Axis, TwigNode]] = []
        current: TwigNode | None = self.selected
        while current is not None:
            entry = parents[id(current)]
            if entry is None:
                path.append((self.root_axis, current))
                current = None
            else:
                parent, axis = entry
                path.append((axis, current))
                current = parent
        path.reverse()
        return path

    def copy(self) -> "TwigQuery":
        root_copy, mapping = self.root.copy_with_map()
        return TwigQuery(self.root_axis, root_copy, mapping[id(self.selected)])

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def canonical(self) -> tuple:
        """Hashable form for syntactic equality (selected node marked)."""

        def go(n: TwigNode) -> tuple:
            forms = sorted((axis.value, go(child)) for axis, child in n.branches)
            return (n.label, n is self.selected, tuple(forms))

        return (self.root_axis.value, go(self.root))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TwigQuery):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_xpath(self) -> str:
        """Concrete syntax with the selected node as the main-path target.

        Branches off the root-to-selected spine render as ``[...]`` filters;
        inside a filter, a single-branch chain renders as a path
        (``[a/b//c]``) and multiple branches render as nested filters.
        """
        spine_ids = {id(n) for _, n in self.spine()}

        def render_filter_body(axis: Axis, n: TwigNode) -> str:
            prefix = "" if axis is Axis.CHILD else ".//"
            return f"[{prefix}{render_plain(n)}]"

        def render_plain(n: TwigNode) -> str:
            # Rendering for nodes strictly inside filters (no spine here).
            if len(n.branches) == 1:
                axis, child = n.branches[0]
                return f"{n.label}{axis.value}{render_plain(child)}"
            return n.label + "".join(
                render_filter_body(axis, child) for axis, child in n.branches
            )

        def render_spine(n: TwigNode) -> str:
            parts = [n.label]
            main_branch: tuple[Axis, TwigNode] | None = None
            for axis, child in n.branches:
                if id(child) in spine_ids and main_branch is None:
                    main_branch = (axis, child)
                else:
                    parts.append(render_filter_body(axis, child))
            if main_branch is not None:
                axis, child = main_branch
                parts.append(f"{axis.value}{render_spine(child)}")
            return "".join(parts)

        return f"{self.root_axis.value}{render_spine(self.root)}"

    def __repr__(self) -> str:
        return f"TwigQuery({self.to_xpath()!r})"


def twig(label: str, *branches: tuple[Axis, TwigNode]) -> TwigNode:
    """Convenience builder mirroring :func:`repro.xmltree.node`."""
    return TwigNode(label, list(branches))
