"""A deterministic, scriptable fault-injection TCP proxy.

:class:`ChaosProxy` sits between any workload client and any server or
router and executes a **fault plan**: a per-connection script of exactly
which failure each accepted connection suffers.  Faults are expressed in
protocol-meaningful units — *frames*, not bytes or wall-clock — so a
plan like "kill the third connection after one answer frame" reproduces
bit-identically on every run and every machine.  That determinism is the
point: every client-edge failure mode the resilience layer claims to
survive (refused connections, connections killed mid-stream, stalled
peers, truncated frames) is reproducible in tests and CI, not just
observed once in production.

The fault vocabulary:

:class:`Refuse`
    The connection is accepted and immediately closed, before a single
    byte flows — the observable shape of a peer whose listener is down
    or backlogged (the dialing client sees an immediate EOF/reset on
    first use).

:class:`KillAfter`
    Forward ``frames`` upstream→downstream frames, then drop both sides
    of the connection — a server process dying mid-response.

:class:`Stall`
    Before forwarding the next upstream→downstream frame, hold all
    traffic for ``seconds`` — a wedged peer or a black-holed link.  The
    client's socket timeout / request deadline decides what happens;
    the stall itself ends and the connection continues cleanly (or is
    killed, with ``then_kill=True``).

:class:`Truncate`
    Forward ``frames`` whole frames, then send only the length prefix
    plus half the body of the next one and drop the connection — the
    mid-frame truncation a crashing peer or dirty NAT produces.

A plan maps **connection ordinals** (0-based accept order) to faults;
unplanned connections relay cleanly.  :func:`periodic_plan` builds the
"every Nth connection dies" shape chaos sessions use, and
:func:`seeded_plan` derives a reproducible pseudo-random plan from a
seed — same seed, same faults, same run.

The proxy is plain blocking sockets on daemon threads (two pump threads
per live connection) — deliberately *not* part of the asyncio serving
tier, so a stalled pump can never interfere with the event loop under
test, and `time.sleep` stalls are exactly what they claim to be.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.serving.timeouts import CONNECT_TIMEOUT

__all__ = [
    "ChaosProxy",
    "Fault",
    "KillAfter",
    "Refuse",
    "Stall",
    "Truncate",
    "periodic_plan",
    "seeded_plan",
]

_LENGTH = struct.Struct(">I")


@dataclass(frozen=True)
class Fault:
    """Base marker for one connection's scripted failure."""


@dataclass(frozen=True)
class Refuse(Fault):
    """Accept and immediately drop the connection (no bytes flow)."""


@dataclass(frozen=True)
class KillAfter(Fault):
    """Relay ``frames`` upstream frames, then kill the connection."""

    frames: int = 1


@dataclass(frozen=True)
class Stall(Fault):
    """Hold traffic for ``seconds`` before the next upstream frame.

    ``then_kill`` drops the connection after the stall instead of
    resuming — a peer that wedged and then died.
    """

    seconds: float = 0.5
    then_kill: bool = False


@dataclass(frozen=True)
class Truncate(Fault):
    """Relay ``frames`` whole frames, then cut the next one mid-body."""

    frames: int = 0


PlanLike = Mapping[int, Fault] | Callable[[int], Fault | None] | None


def periodic_plan(every: int, fault: Fault, *,
                  start: int | None = None) -> Callable[[int], Fault | None]:
    """A plan hitting every ``every``-th connection with ``fault``.

    ``start`` is the first affected ordinal (default ``every - 1``, so
    the initial connection of a session always survives to ship the
    corpus).
    """
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every!r}")
    first = every - 1 if start is None else start

    def plan(ordinal: int) -> Fault | None:
        if ordinal >= first and (ordinal - first) % every == 0:
            return fault
        return None

    return plan


def seeded_plan(seed: int, faults: "list[Fault]", *, probability: float = 0.3,
                protect: int = 1) -> Callable[[int], Fault | None]:
    """A reproducible pseudo-random plan: same seed, same script.

    Each connection ordinal independently draws (from
    ``random.Random(seed)``-derived state, keyed by ordinal so lookup
    order does not matter) whether it faults and which fault it gets.
    The first ``protect`` connections never fault, so a session can
    always establish itself before the chaos starts.
    """
    if not faults:
        raise ValueError("seeded_plan needs at least one fault to choose")
    if not 0 <= probability <= 1:
        raise ValueError(f"probability must be in [0, 1], "
                         f"got {probability!r}")

    def plan(ordinal: int) -> Fault | None:
        if ordinal < protect:
            return None
        rng = random.Random(seed * 2_147_483_647 + ordinal)
        if rng.random() >= probability:
            return None
        return rng.choice(faults)

    return plan


class ChaosProxy:
    """A TCP proxy that executes a deterministic per-connection fault plan.

    ``upstream`` is the real endpoint's ``(host, port)``; ``plan`` maps
    accept-order ordinals to :class:`Fault` records (a mapping, or a
    callable ``ordinal -> Fault | None``).  Point any
    :class:`~repro.serving.net.WorkloadClient` /
    :class:`~repro.learning.backend.RemoteBackend` at :attr:`address`
    and it experiences exactly the scripted failures, nothing else —
    unplanned connections are byte-faithful relays.

    :meth:`stats` reports what actually happened (connections accepted,
    refused, killed, stalled, truncated, frames forwarded), so a chaos
    test can assert the fault *fired*, not merely that the client
    survived something.
    """

    def __init__(self, upstream: tuple[str, int], *,
                 host: str = "127.0.0.1", port: int = 0,
                 plan: PlanLike = None) -> None:
        self._upstream = upstream
        self._plan = plan
        self._lock = threading.Lock()
        self._counts = {  # guarded-by: _lock
            "connections": 0, "refused": 0, "killed": 0, "stalled": 0,
            "truncated": 0, "frames_forwarded": 0, "relayed_clean": 0,
        }
        self._closing = False  # guarded-by: _lock
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            self._listener.listen(64)
        except OSError:
            self._listener.close()
            raise
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"chaos-proxy-{self.port}")
        self._accept_thread.start()

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """What clients should dial instead of the upstream."""
        return self.host, self.port

    def stats(self) -> dict[str, int]:
        """What the proxy has done so far (JSON-encodable counters)."""
        with self._lock:
            return dict(self._counts)

    def _bump(self, key: str, by: int = 1) -> None:
        with self._lock:
            self._counts[key] += by

    def close(self) -> None:
        """Stop accepting and release the listener.  Idempotent.

        Live relayed connections are daemon threads over dead-end
        sockets; they exit as their peers close.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
        # A bare close() does not wake a thread blocked in accept();
        # shutdown() does (and on platforms where it raises for
        # listeners, the self-connect below wakes it instead).
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            with socket.create_connection((self.host, self.port),
                                          timeout=0.2):
                pass
        except OSError:
            pass
        self._listener.close()
        self._accept_thread.join(timeout=5)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _fault_for(self, ordinal: int) -> Fault | None:
        plan = self._plan
        if plan is None:
            return None
        if callable(plan):
            return plan(ordinal)
        return plan.get(ordinal)

    def _accept_loop(self) -> None:
        ordinal = 0
        while True:
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                closing = self._closing
            if closing:  # the wake-up connect from close(), not traffic
                downstream.close()
                return
            self._bump("connections")
            fault = self._fault_for(ordinal)
            ordinal += 1
            if isinstance(fault, Refuse):
                self._bump("refused")
                downstream.close()
                continue
            try:
                upstream = socket.create_connection(self._upstream,
                                                    timeout=CONNECT_TIMEOUT)
            except OSError:
                # The real endpoint is down: to the client that is
                # indistinguishable from a refusal.
                self._bump("refused")
                downstream.close()
                continue
            threading.Thread(target=self._pump_raw,
                             args=(downstream, upstream),
                             daemon=True, name="chaos-pump-up").start()
            threading.Thread(target=self._pump_frames,
                             args=(upstream, downstream, fault),
                             daemon=True, name="chaos-pump-down").start()

    def _pump_raw(self, source: socket.socket, sink: socket.socket) -> None:
        """Byte-faithful client→server relay (requests are never faulted;
        every scripted failure manifests on the response path, which is
        where a client can actually observe it)."""
        try:
            while True:
                data = source.recv(65536)
                if not data:
                    break
                sink.sendall(data)
            try:
                sink.shutdown(socket.SHUT_WR)
            except OSError:
                pass
        except OSError:
            pass
        finally:
            # Closing both halves here would tear the response path out
            # from under the frame pump; it owns the teardown.
            pass

    def _pump_frames(self, source: socket.socket, sink: socket.socket,
                     fault: Fault | None) -> None:
        """Frame-aware server→client relay executing the scripted fault."""
        forwarded = 0
        try:
            while True:
                if isinstance(fault, KillAfter) \
                        and forwarded >= fault.frames:
                    self._bump("killed")
                    return
                if isinstance(fault, Stall):
                    self._bump("stalled")
                    time.sleep(fault.seconds)
                    if fault.then_kill:
                        self._bump("killed")
                        return
                    fault = None  # stall once, then relay cleanly
                prefix = self._recv_exact(source, _LENGTH.size)
                if not prefix:
                    if fault is None:
                        self._bump("relayed_clean")
                    return
                (length,) = _LENGTH.unpack(prefix)
                body = self._recv_exact(source, length)
                if len(body) != length:
                    return  # upstream died mid-frame; relay the carnage
                if isinstance(fault, Truncate) \
                        and forwarded >= fault.frames:
                    self._bump("truncated")
                    sink.sendall(prefix + body[:max(1, length // 2)])
                    return
                sink.sendall(prefix + body)
                forwarded += 1
                self._bump("frames_forwarded")
        except OSError:
            pass
        finally:
            for sock in (source, sink):
                # shutdown() before close(): the raw pump thread may be
                # blocked in recv() on this same socket, and a bare
                # close() then never sends the FIN — the killed client
                # would only notice at its socket timeout instead of
                # immediately.
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    @staticmethod
    def _recv_exact(sock: socket.socket, n: int) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                break
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)
