"""The server-side content-addressed instance cache.

:class:`InstanceStore` maps structural digests
(:func:`repro.serving.wire.instance_digest`) to **decoded** instances —
one :class:`~repro.xmltree.tree.XTree` / :class:`~repro.graphdb.graph.Graph`
object per digest, shared across connections and requests.  That single
canonical object is the whole point: the engine's index map is weakly
keyed by object identity, so every workload that resolves a digest to the
stored object evaluates against the instance's *warm* index — the corpus
is shipped once, indexed once, and reused for the rest of the session.

The store is a bounded LRU over **encoded size** (the wire bytes the
record occupied, a good proxy for index memory): a ``put`` that pushes
the total over ``max_bytes`` evicts least-recently-used entries first.
Eviction is always safe — in-flight requests hold strong references to
the instances they decoded, and a later workload referencing an evicted
digest gets a ``need_instances`` reply (the client re-ships), never an
error.  Hit/miss/eviction counters surface through the wire ``stats``
frame and the HTTP ``/stats`` endpoint.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

#: Default cache budget: 256 MiB of encoded instances.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class InstanceStore:
    """Bounded, thread-safe LRU of digest → decoded instance."""

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes < 1:
            raise ValueError(
                f"max_bytes must be a positive integer, got {max_bytes!r}")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        # digest -> (instance, encoded_size); insertion/access order is
        # the LRU order (least recent first).
        self._entries: "OrderedDict[str, tuple[object, int]]" = OrderedDict()  # guarded-by: _lock
        self._bytes = 0  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    def get(self, digest: str) -> object | None:
        """The stored instance for ``digest`` (LRU-touched), or ``None``."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(digest)
            self._hits += 1
            return entry[0]

    def put(self, digest: str, instance: object, size: int) -> None:
        """Store one decoded instance; evicts LRU entries over budget.

        Idempotent per digest (a re-put refreshes recency, keeps the
        original object so existing index reuse is never broken).  The
        just-inserted entry is never evicted by its own ``put`` — an
        instance larger than the whole budget is admitted alone and ages
        out on the next insertion.
        """
        with self._lock:
            existing = self._entries.get(digest)
            if existing is not None:
                self._entries.move_to_end(digest)
                return
            self._entries[digest] = (instance, size)
            self._bytes += size
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                _, (_, old_size) = self._entries.popitem(last=False)
                self._bytes -= old_size
                self._evictions += 1

    def pop(self, digest: str) -> object | None:
        """Remove and return the entry for ``digest`` (``None`` if absent).

        The delta-shipping rekey: after an in-place patch the stored
        object no longer matches its old digest, so the old key must go
        — a later ref to it then negotiates a re-ship instead of
        silently evaluating against the patched state.  Not counted as
        a hit or miss (it is maintenance, not a lookup).
        """
        with self._lock:
            entry = self._entries.pop(digest, None)
            if entry is None:
                return None
            self._bytes -= entry[1]
            return entry[0]

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """JSON-encodable counters (shipped on the wire ``stats`` frame)."""
        with self._lock:
            return {"instances": len(self._entries), "bytes": self._bytes,
                    "max_bytes": self.max_bytes, "hits": self._hits,
                    "misses": self._misses, "evictions": self._evictions}

    def clear(self) -> None:
        """Drop every entry (counters keep their history)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __repr__(self) -> str:
        stats = self.stats()
        return (f"<InstanceStore {stats['instances']} instances "
                f"{stats['bytes']}/{stats['max_bytes']} bytes>")
