"""The digest-aware serving fleet: one router, N workload servers.

One :class:`~repro.serving.net.WorkloadServer` process is a hard
ceiling — one GIL, one :class:`~repro.serving.instance_cache.InstanceStore`.
:class:`FleetRouter` scales the tier out *without changing a single
answer*: it speaks the exact same wire protocol as a single server, so a
:class:`~repro.serving.net.WorkloadClient` (and therefore
:class:`~repro.learning.backend.RemoteBackend`) pointed at a router is
indistinguishable from one pointed at a server — same queries, same
questions, same node objects.

The routing key is the **content digest**.  Each incoming workload frame
is split — at the frame level, without ever decoding an instance — into
per-member sub-workloads: every instance record (full or ref) already
carries its structural digest, and
:meth:`~repro.serving.ring.HashRing.node_for` assigns that digest to
exactly one member.  A corpus therefore ships to exactly one shard
server, whose engine keeps the *warm* index for it; instance-free
acceptance items route by the digest of their query record so repeated
membership rounds stay sticky too.  Shard answer frames come back
per-member with sub-workload positions; the router remaps them onto the
original positions and merges all members onto one position-aligned
client stream.

Failure and elasticity reuse the content-addressed negotiation:

* the router keeps an :class:`~repro.serving.instance_cache.InstanceStore`
  of **encoded records** it has seen, so a member's ``need_instances``
  is usually answered from the router without bothering the client;
* a member that dies mid-request (connection drop, kill -9) is removed
  from the ring and its *unanswered* positions are re-dispatched to the
  survivors — already-delivered answers are never re-sent, so delivery
  stays exactly-once and the client sees a complete, error-free stream;
* ``drain``/``undrain`` frames take a member out of (back into) the
  ring without touching in-flight work, so a rolling restart never
  fails a session.

The cost model is the ring's: re-hashing after a membership change moves
only the departed member's digests, and each moved digest costs exactly
one re-ship (router cache first, client fallback) on its next use.

:class:`RouterThread` runs a router on a dedicated thread for blocking
callers; :class:`Fleet` is the whole harness — it forks N member server
processes, wires a router over them, and exposes kill/drain/restart for
failure injection and rolling restarts.
"""

from __future__ import annotations

import asyncio
import multiprocessing
from collections.abc import Mapping
from dataclasses import dataclass

from repro.serving import timeouts
from repro.serving.instance_cache import InstanceStore
from repro.serving.net import EndpointThread, WorkloadClient, WorkloadServer
from repro.serving.ring import DEFAULT_REPLICAS, HashRing
from repro.serving.wire import (
    ProtocolError,
    apply_record_delta,
    decode_delta,
    read_frame,
    record_digest,
    reinit_after_fork,
    write_frame,
)

#: Router-side record cache budget (encoded records, not decoded trees).
DEFAULT_RECORD_CACHE_BYTES = 256 * 1024 * 1024


@dataclass
class _Member:
    """Router-side view of one fleet member."""

    host: str
    port: int
    healthy: bool = True
    draining: bool = False


class _MemberDown(Exception):
    """A member could not be dialed; the caller rehashes and retries."""

    def __init__(self, member_id: str) -> None:
        super().__init__(f"fleet member {member_id!r} is unreachable")
        self.member_id = member_id


class _Dispatch:
    """One sub-workload in flight on one member.

    ``positions[j]`` is the original workload position of the
    sub-workload's item ``j`` — the remap table for the member's shard
    frames.  ``frames`` counts the shard frames received, cross-checked
    against the member's ``done`` announcement.
    """

    __slots__ = ("member", "positions", "frames")

    def __init__(self, member: str, positions: list[int]) -> None:
        self.member = member
        self.positions = positions
        self.frames = 0


class FleetRouter:
    """Consistent-hash workload router over N ``WorkloadServer`` members.

    Speaks the full workload protocol on its listening socket; dials
    members lazily, one upstream connection per (client connection,
    member) pair so concurrent client sessions never share an upstream
    byte stream.  All router state lives on the event loop thread — no
    locks, by construction.
    """

    #: Bound on the aclose() drain of in-flight connection handlers.
    #: (Number lives in :mod:`repro.serving.timeouts`; override per
    #: instance as needed.)
    CLOSE_DRAIN_TIMEOUT = timeouts.CLOSE_DRAIN_TIMEOUT
    #: Bound on dialing one member (from :mod:`repro.serving.timeouts`).
    CONNECT_TIMEOUT = timeouts.CONNECT_TIMEOUT

    def __init__(self, members: Mapping[str, tuple[str, int]], *,
                 host: str = "127.0.0.1", port: int = 0,
                 replicas: int = DEFAULT_REPLICAS,
                 record_cache_bytes: int = DEFAULT_RECORD_CACHE_BYTES,
                 ) -> None:
        if not members:
            raise ValueError("a fleet needs at least one member")
        self.host = host
        self.port = port
        self._members: dict[str, _Member] = {
            member_id: _Member(h, p)
            for member_id, (h, p) in members.items()
        }  # lock-free: membership is only touched on the event loop thread
        self._ring = HashRing(self._members, replicas=replicas)
        #: Encoded records seen by this router, digest-addressed.  Serves
        #: member ``need_instances`` without a client round trip, which is
        #: what makes failover re-ships router-local.
        self.record_store = InstanceStore(record_cache_bytes)
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()  # lock-free: loop only
        self.draining = False  # lock-free: only touched on the loop thread
        #: Observability counters (loop-thread only).
        self.requests = 0  # lock-free: only touched on the loop thread
        self.shards_forwarded = 0  # lock-free: loop thread only
        self.failovers = 0  # lock-free: loop thread only
        self.reships = 0  # lock-free: loop thread only
        self.deltas_patched = 0  # lock-free: loop thread only

    # ------------------------------------------------------------------
    # Lifecycle (same shape as WorkloadServer, so EndpointThread fits)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("router already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def aclose(self, *, drain_timeout: float | None = None) -> None:
        """Stop listening, cancel in-flight handlers, bounded drain."""
        if drain_timeout is None:
            drain_timeout = self.CLOSE_DRAIN_TIMEOUT
        if self._server is not None:
            self._server.close()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.wait(set(self._conn_tasks),
                                   timeout=drain_timeout)
            try:
                await asyncio.wait_for(self._server.wait_closed(),
                                       drain_timeout)
            except asyncio.TimeoutError:
                pass  # the listener socket is closed regardless
            self._server = None

    # ------------------------------------------------------------------
    # Membership (loop-thread entry points; Fleet calls via run_coroutine)
    # ------------------------------------------------------------------
    async def set_member(self, member_id: str, host: str,
                         port: int) -> None:
        """Add or replace a member (restart = same id, new port).

        Because ring points depend only on the member *id*, replacing a
        member at a new address moves zero digests.
        """
        self._members[member_id] = _Member(host, port)
        self._ring.add(member_id)

    async def check_health(self) -> dict[str, bool]:
        """Ping every member; heal or fail them in the ring accordingly."""
        out: dict[str, bool] = {}
        for member_id, member in list(self._members.items()):
            alive = await self._ping_member(member)
            if alive:
                member.healthy = True
                if not member.draining:
                    self._ring.add(member_id)
            else:
                member.healthy = False
                self._ring.remove(member_id)
            out[member_id] = alive
        return out

    async def _ping_member(self, member: _Member) -> bool:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(member.host, member.port),
                self.CONNECT_TIMEOUT)
        except (OSError, asyncio.TimeoutError):
            return False
        try:
            write_frame(writer, {"type": "ping"})
            await writer.drain()
            reply = await read_frame(reader)
            return isinstance(reply, dict) and reply.get("type") == "ok"
        except (OSError, ProtocolError):
            return False
        finally:
            writer.close()

    def _mark_down(self, member_id: str,
                   upstreams: dict[str, tuple[asyncio.StreamReader,
                                              asyncio.StreamWriter]],
                   ) -> None:
        member = self._members.get(member_id)
        if member is not None:
            member.healthy = False
        self._ring.remove(member_id)
        pair = upstreams.pop(member_id, None)
        if pair is not None:
            pair[1].close()

    async def _upstream(self, member_id: str,
                        upstreams: dict[str, tuple[asyncio.StreamReader,
                                                   asyncio.StreamWriter]],
                        ) -> tuple[asyncio.StreamReader,
                                   asyncio.StreamWriter]:
        """This client connection's link to ``member_id`` (dial lazily)."""
        pair = upstreams.get(member_id)
        if pair is not None:
            return pair
        member = self._members.get(member_id)
        if member is None or not member.healthy:
            raise _MemberDown(member_id)
        try:
            pair = await asyncio.wait_for(
                asyncio.open_connection(member.host, member.port),
                self.CONNECT_TIMEOUT)
        except (OSError, asyncio.TimeoutError) as exc:
            raise _MemberDown(member_id) from exc
        upstreams[member_id] = pair
        return pair

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        # This client connection's private upstream links, dialed lazily.
        upstreams: dict[str, tuple[asyncio.StreamReader,
                                   asyncio.StreamWriter]] = {}
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as exc:
                    write_frame(writer, {"type": "error",
                                         "message": str(exc)})
                    await writer.drain()
                    break
                if frame is None:
                    break
                await self._serve_request(frame, reader, writer, upstreams)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Only aclose() cancels handler tasks; exit cleanly so the
            # stream protocol's done-callback has nothing to log.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            for _, up_writer in upstreams.values():
                up_writer.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                pass  # loop teardown mid-handshake; nothing left to do

    async def _serve_request(self, frame: object,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter,
                             upstreams: dict[str, tuple[
                                 asyncio.StreamReader,
                                 asyncio.StreamWriter]]) -> None:
        kind = frame.get("type") if isinstance(frame, dict) else None
        if kind == "stats":
            await self._serve_stats(writer, upstreams)
            return
        if kind == "ping":
            write_frame(writer, {"type": "ok", "draining": self.draining})
            await writer.drain()
            return
        if kind in ("drain", "undrain"):
            await self._serve_drain(kind, frame, writer)
            return
        if kind == "ring":
            write_frame(writer, self._ring_payload())
            await writer.drain()
            return
        if kind == "put_instances":
            await self._serve_put_instances(frame, writer, upstreams)
            return
        if kind == "delta":
            await self._serve_put_deltas(frame, writer, upstreams)
            return
        if kind is not None:
            write_frame(writer, {"type": "error",
                                 "message": f"unsupported request frame "
                                            f"type {kind!r}"})
            await writer.drain()
            return
        self.requests += 1
        try:
            await _WorkloadCall(self, frame, reader, writer,
                                upstreams).serve()
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as exc:  # noqa: BLE001 - surfaced to the peer
            write_frame(writer, {"type": "error", "message": str(exc)})
            await writer.drain()

    # ------------------------------------------------------------------
    # Control-plane frames
    # ------------------------------------------------------------------
    async def _serve_stats(self, writer: asyncio.StreamWriter,
                           upstreams: dict[str, tuple[
                               asyncio.StreamReader,
                               asyncio.StreamWriter]]) -> None:
        members: dict[str, dict] = {}
        for member_id, member in list(self._members.items()):
            if not member.healthy:
                members[member_id] = {"healthy": False}
                continue
            try:
                up_reader, up_writer = await self._upstream(member_id,
                                                            upstreams)
                write_frame(up_writer, {"type": "stats"})
                await up_writer.drain()
                reply = await read_frame(up_reader)
            except (_MemberDown, OSError, ProtocolError):
                self._mark_down(member_id, upstreams)
                members[member_id] = {"healthy": False}
                continue
            if isinstance(reply, dict) and reply.get("type") == "stats":
                members[member_id] = {
                    "healthy": True,
                    **{k: v for k, v in reply.items() if k != "type"}}
            else:
                self._mark_down(member_id, upstreams)
                members[member_id] = {"healthy": False}
        write_frame(writer, {
            "type": "stats",
            "executor": "fleet",
            "router": {
                "requests": self.requests,
                "shards_forwarded": self.shards_forwarded,
                "failovers": self.failovers,
                "reships": self.reships,
                "deltas_patched": self.deltas_patched,
                "members_live": len(self._ring),
                "record_cache": self.record_store.stats(),
            },
            "members": members,
        })
        await writer.drain()

    async def _serve_drain(self, kind: str, frame: dict,
                           writer: asyncio.StreamWriter) -> None:
        member_id = frame.get("member")
        if member_id is not None:
            member = self._members.get(member_id)
            if member is None:
                write_frame(writer, {
                    "type": "error",
                    "message": f"unknown fleet member {member_id!r}"})
                await writer.drain()
                return
            if kind == "drain":
                member.draining = True
                self._ring.remove(member_id)
            else:
                member.draining = False
                if member.healthy:
                    self._ring.add(member_id)
            write_frame(writer, {"type": "ok", "member": member_id,
                                 "draining": member.draining})
            await writer.drain()
            return
        # No member named: drain/undrain the router's own listener,
        # exactly like a single WorkloadServer.
        if kind == "drain":
            if self._server is not None and not self.draining:
                self._server.close()
                self.draining = True
        else:
            if self.draining:
                self._server = await asyncio.start_server(
                    self._handle_connection, self.host, self.port)
                self.draining = False
        write_frame(writer, {"type": "ok", "draining": self.draining})
        await writer.drain()

    def _ring_payload(self) -> dict:
        return {
            "type": "ring",
            "replicas": self._ring.replicas,
            "members": [
                {"id": member_id, "host": member.host, "port": member.port,
                 "healthy": member.healthy, "draining": member.draining,
                 "in_ring": member_id in self._ring}
                for member_id, member in sorted(self._members.items())
            ],
        }

    async def _serve_put_instances(
            self, frame: dict, writer: asyncio.StreamWriter,
            upstreams: dict[str, tuple[asyncio.StreamReader,
                                       asyncio.StreamWriter]]) -> None:
        """Cache the records, then forward each to its ring owner."""
        try:
            records = self._checked_records(frame)
        except ProtocolError as exc:
            write_frame(writer, {"type": "error", "message": str(exc)})
            await writer.drain()
            return
        stored: list[str] = []
        remaining = records
        while remaining:
            if not len(self._ring):
                write_frame(writer, {"type": "error",
                                     "message": "no live fleet members"})
                await writer.drain()
                return
            assignment: dict[str, list[tuple[str, dict]]] = {}
            for digest, record in remaining:
                owner = self._ring.node_for(digest)
                assignment.setdefault(owner, []).append((digest, record))
            remaining = []
            for member_id, pairs in assignment.items():
                try:
                    up_reader, up_writer = await self._upstream(member_id,
                                                                upstreams)
                    write_frame(up_writer, {
                        "type": "put_instances",
                        "instances": [record for _, record in pairs]})
                    await up_writer.drain()
                    reply = await read_frame(up_reader)
                except (_MemberDown, OSError, ProtocolError):
                    self._mark_down(member_id, upstreams)
                    remaining.extend(pairs)
                    continue
                if not (isinstance(reply, dict)
                        and reply.get("type") == "ok"):
                    self._mark_down(member_id, upstreams)
                    remaining.extend(pairs)
                    continue
                stored.extend(digest for digest, _ in pairs)
        write_frame(writer, {"type": "ok", "stored": len(stored)})
        await writer.drain()

    def patch_record(self, delta: dict) -> dict | None:
        """The full record for a decoded delta's target digest, or ``None``.

        Applies the diff to the router's cached *encoded* record for the
        base digest (:func:`~repro.serving.wire.apply_record_delta` — no
        instance is ever materialised router-side), verifies the patched
        record hashes to the promised target digest, and caches it under
        that digest.  The base record stays cached too: it is still a
        correct encoding of the *old* state, unlike a server's patched
        instance.  Any failure — base unknown, inapplicable ops, digest
        mismatch — returns ``None`` and lets the member/client
        ``need_instances`` negotiation repair the gap.
        """
        to_digest = delta["to"]
        cached = self.record_store.get(to_digest)
        if isinstance(cached, dict):
            return cached
        base = self.record_store.get(delta["from"])
        if not isinstance(base, dict):
            return None
        try:
            patched = apply_record_delta(base, delta)
            actual, size = record_digest(patched)
            if actual != to_digest:
                return None
        except ProtocolError:
            return None
        patched = {**patched, "digest": to_digest}
        self.record_store.put(to_digest, patched, size)
        self.deltas_patched += 1
        return patched

    async def _serve_put_deltas(
            self, frame: dict, writer: asyncio.StreamWriter,
            upstreams: dict[str, tuple[asyncio.StreamReader,
                                       asyncio.StreamWriter]]) -> None:
        """Patch the record cache, then forward each delta to the ring
        owner of its *target* digest.

        A member that cannot apply a forwarded delta (base evicted, or
        the target re-hashed onto a member that never held the base)
        reports the target digest missing; the router re-ships the full
        patched record from its own cache — one hop, no client round
        trip.  Only digests the router cannot supply either surface in
        the reply's ``missing`` list for the client's full-record
        fallback.
        """
        records = frame.get("instances")
        if not isinstance(records, list) \
                or not all(isinstance(r, dict) for r in records):
            write_frame(writer, {"type": "error",
                                 "message": "malformed delta frame"})
            await writer.drain()
            return
        try:
            entries = []  # (to_digest, delta record, patched full | None)
            for record in records:
                delta = decode_delta(record)
                entries.append((delta["to"], record,
                                self.patch_record(delta)))
        except ProtocolError as exc:
            write_frame(writer, {"type": "error", "message": str(exc)})
            await writer.drain()
            return
        applied: list[str] = []
        missing: list[str] = []
        remaining = entries
        while remaining:
            if not len(self._ring):
                write_frame(writer, {"type": "error",
                                     "message": "no live fleet members"})
                await writer.drain()
                return
            assignment: dict[str, list[tuple[str, dict, dict | None]]] = {}
            for entry in remaining:
                owner = self._ring.node_for(entry[0])
                assignment.setdefault(owner, []).append(entry)
            remaining = []
            for member_id, group in assignment.items():
                try:
                    up_reader, up_writer = await self._upstream(member_id,
                                                                upstreams)
                    write_frame(up_writer, {
                        "type": "delta",
                        "instances": [record for _, record, _ in group]})
                    await up_writer.drain()
                    reply = await read_frame(up_reader)
                except (_MemberDown, OSError, ProtocolError):
                    self._mark_down(member_id, upstreams)
                    remaining.extend(group)
                    continue
                if not (isinstance(reply, dict)
                        and reply.get("type") == "ok"):
                    self._mark_down(member_id, upstreams)
                    remaining.extend(group)
                    continue
                member_missing = set(reply.get("missing") or ())
                fulls: list[dict] = []
                for to_digest, _, patched in group:
                    if to_digest not in member_missing:
                        applied.append(to_digest)
                    elif patched is not None:
                        fulls.append(patched)
                    else:
                        missing.append(to_digest)
                if not fulls:
                    continue
                try:
                    write_frame(up_writer, {"type": "put_instances",
                                            "instances": fulls})
                    await up_writer.drain()
                    reply = await read_frame(up_reader)
                except (OSError, ProtocolError):
                    self._mark_down(member_id, upstreams)
                    missing.extend(r["digest"] for r in fulls)
                    continue
                if isinstance(reply, dict) and reply.get("type") == "ok":
                    self.reships += len(fulls)
                    applied.extend(r["digest"] for r in fulls)
                else:
                    self._mark_down(member_id, upstreams)
                    missing.extend(r["digest"] for r in fulls)
        write_frame(writer, {"type": "ok", "applied": applied,
                             "missing": missing})
        await writer.drain()

    def _checked_records(self, frame: dict) -> list[tuple[str, dict]]:
        """Digest-verify and cache every record of a ``put_instances``."""
        records = frame.get("instances")
        if not isinstance(records, list):
            raise ProtocolError("malformed put_instances frame")
        out: list[tuple[str, dict]] = []
        for record in records:
            if not isinstance(record, dict) or "digest" not in record:
                raise ProtocolError(
                    "put_instances records must carry a digest")
            digest = record["digest"]
            actual, size = record_digest(record)
            if digest != actual:
                raise ProtocolError(
                    f"instance digest mismatch: announced {digest!r}, "
                    f"encoded body hashes to {actual!r}")
            self.record_store.put(digest, record, size)
            out.append((digest, record))
        return out


class _WorkloadCall:
    """One workload request through the router, start to finish.

    Owns the split (original positions → per-member sub-workloads), the
    merge (sub-positions → original positions, exactly-once), the
    ``need_instances`` negotiation (router cache first, client second),
    and failover (re-dispatch a dead member's unanswered positions over
    the re-hashed ring).  Instantiated per request; all state is local
    to the router's event loop.
    """

    def __init__(self, router: FleetRouter, frame: dict,
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 upstreams: dict[str, tuple[asyncio.StreamReader,
                                            asyncio.StreamWriter]]) -> None:
        self.router = router
        self.frame = frame
        self.reader = reader
        self.writer = writer
        self.upstreams = upstreams
        self.queue: asyncio.Queue = asyncio.Queue()
        self.pumps: set[asyncio.Task] = set()
        #: Original positions whose answers have been delivered.
        self.answered: set[int] = set()
        #: Positions parked because their target member is mid-dispatch
        #: (one request per upstream connection at a time).
        self.waiting: dict[str, list[int]] = {}
        self.active_members: set[str] = set()
        self.pending = 0
        self.shards_out = 0
        # Filled by _parse():
        self.item_records: list[dict] = []
        self.query_records: list = []
        self.inst_digests: list[str] = []
        self.keys: list[str] = []
        #: digest → full record available router-side for this request
        #: (client-shipped this request, negotiated puts, cache hits).
        self.records: dict[str, dict] = {}
        #: Digests the client shipped in full *this request* — inlined
        #: into the first dispatch so the initial ship is one hop.
        self.shipped: set[str] = set()
        #: target digest → the ``delta`` record the client shipped for
        #: it this request, and target digest → its base digest.  The
        #: first dispatch forwards the delta itself when the target
        #: still hashes to the base's owner (warm in-place patch); a
        #: moved target gets the router-patched full record instead.
        self.delta_records: dict[str, dict] = {}
        self.delta_from: dict[str, str] = {}

    # ------------------------------------------------------------------
    async def serve(self) -> None:
        self._parse()
        ok = False
        try:
            await self._dispatch(list(range(len(self.item_records))),
                                 inline=True)
            while self.pending:
                message, dispatch, frame = await self.queue.get()
                if message == "shard":
                    await self._on_shard(dispatch, frame)
                elif message == "need":
                    await self._on_need(dispatch, frame)
                elif message == "done":
                    self._on_done(dispatch, frame)
                    await self._release_member(dispatch.member)
                elif message == "down":
                    await self._on_down(dispatch)
                else:  # a member-reported error fails the whole request
                    raise ProtocolError(
                        f"fleet member {dispatch.member}: "
                        f"{frame.get('message', 'unknown')}")
            write_frame(self.writer, {"type": "done",
                                      "n_shards": self.shards_out,
                                      "executor": "fleet"})
            await self.writer.drain()
            ok = True
        finally:
            for task in self.pumps:
                task.cancel()
            if self.pumps:
                await asyncio.gather(*self.pumps, return_exceptions=True)
            if not ok:
                # Abandoned mid-request: every upstream that served this
                # request may be desynced mid-response.  Drop them all;
                # the next request dials fresh.
                for member_id in list(self.upstreams):
                    self.upstreams.pop(member_id)[1].close()

    # ------------------------------------------------------------------
    def _parse(self) -> None:
        """Digest every instance, derive each item's routing key."""
        try:
            instance_records = self.frame["instances"]
            self.query_records = list(self.frame["queries"])
            self.item_records = list(self.frame["items"])
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"malformed workload: {exc}") from exc
        for record in instance_records:
            kind = record.get("type") if isinstance(record, dict) else None
            if kind == "ref":
                digest = record.get("digest")
                if not isinstance(digest, str):
                    raise ProtocolError(
                        f"malformed instance ref {record!r}")
                self.inst_digests.append(digest)
                cached = self.router.record_store.get(digest)
                if isinstance(cached, dict):
                    self.records[digest] = cached
            elif kind == "delta":
                delta = decode_delta(record)
                digest = delta["to"]
                self.inst_digests.append(digest)
                self.delta_records[digest] = record
                self.delta_from[digest] = delta["from"]
                patched = self.router.patch_record(delta)
                if patched is not None:
                    self.records[digest] = patched
            elif kind in ("tree", "graph"):
                actual, size = record_digest(record)
                digest = record.get("digest")
                if digest is None:
                    digest = actual
                    record = {**record, "digest": digest}
                elif digest != actual:
                    raise ProtocolError(
                        f"instance digest mismatch: announced {digest!r}, "
                        f"encoded body hashes to {actual!r}")
                self.inst_digests.append(digest)
                self.records[digest] = record
                self.shipped.add(digest)
                self.router.record_store.put(digest, record, size)
            else:
                raise ProtocolError(f"unknown instance type {kind!r}")
        try:
            query_digests = [record_digest(q)[0]
                             for q in self.query_records]
        except TypeError as exc:
            raise ProtocolError(f"malformed workload query: {exc}") from exc
        for record in self.item_records:
            if not isinstance(record, dict):
                raise ProtocolError(f"malformed workload item {record!r}")
            query_index = record.get("query")
            if not isinstance(query_index, int) or not (
                    0 <= query_index < len(self.query_records)):
                raise ProtocolError(
                    f"dangling query reference {query_index!r}")
            instance_index = record.get("instance")
            if instance_index is None:
                # Instance-free item (acceptance): route by query digest
                # so one membership session stays on one member.
                self.keys.append(query_digests[query_index])
            elif isinstance(instance_index, int) and (
                    0 <= instance_index < len(self.inst_digests)):
                self.keys.append(self.inst_digests[instance_index])
            else:
                raise ProtocolError(
                    f"dangling instance reference {instance_index!r}")

    # ------------------------------------------------------------------
    def _subframe(self, positions: list[int], *, inline: bool) -> dict:
        """The sub-workload frame for ``positions``, indices remapped.

        First dispatch (``inline=True``) forwards the full records the
        client just shipped; re-dispatches send refs only and let the
        ``need_instances`` negotiation pull records from the router's
        cache — failover re-ships exactly the digests that moved.
        """
        sub_instances: list[dict] = []
        instance_slot: dict[str, int] = {}
        sub_queries: list = []
        query_slot: dict[int, int] = {}
        items: list[dict] = []
        for position in positions:
            record = dict(self.item_records[position])
            query_index = record["query"]
            if query_index not in query_slot:
                query_slot[query_index] = len(sub_queries)
                sub_queries.append(self.query_records[query_index])
            record["query"] = query_slot[query_index]
            instance_index = record.get("instance")
            if instance_index is not None:
                digest = self.inst_digests[instance_index]
                if digest not in instance_slot:
                    instance_slot[digest] = len(sub_instances)
                    if inline and digest in self.shipped:
                        sub_instances.append(self.records[digest])
                    elif inline and digest in self.delta_records:
                        sub_instances.append(self._delta_ship(digest))
                    else:
                        sub_instances.append({"type": "ref",
                                              "digest": digest})
                record["instance"] = instance_slot[digest]
            items.append(record)
        return {"instances": sub_instances, "queries": sub_queries,
                "items": items}

    def _delta_ship(self, digest: str) -> dict:
        """What the first dispatch sends for a client-shipped delta.

        The target digest's ring owner held the *base* only when the
        two digests hash to the same member — then the delta itself
        goes through and the member patches its warm copy in place.  A
        target that re-hashed onto a different member gets the
        router-patched full record directly (when the router could
        patch): warm-affinity loss costs one hop, not a client round
        trip.  With no patched record available the delta is forwarded
        anyway and the ``need_instances`` negotiation repairs the gap.
        """
        ring = self.router._ring
        if digest in self.records \
                and ring.node_for(digest) != ring.node_for(
                    self.delta_from[digest]):
            self.router.reships += 1
            return self.records[digest]
        return self.delta_records[digest]

    async def _dispatch(self, positions: list[int], *,
                        inline: bool) -> None:
        """Assign ``positions`` over the ring and start member pumps."""
        remaining = positions
        while remaining:
            if not len(self.router._ring):
                raise ProtocolError(
                    "no live fleet members remain for this workload")
            assignment: dict[str, list[int]] = {}
            for position in remaining:
                owner = self.router._ring.node_for(self.keys[position])
                assignment.setdefault(owner, []).append(position)
            remaining = []
            for member_id, member_positions in assignment.items():
                if member_id in self.active_members:
                    # One request per upstream connection at a time; park
                    # until the member's current dispatch completes.
                    self.waiting.setdefault(member_id, []).extend(
                        member_positions)
                    continue
                try:
                    _, up_writer = await self.router._upstream(
                        member_id, self.upstreams)
                    write_frame(up_writer, self._subframe(
                        member_positions, inline=inline))
                    await up_writer.drain()
                except (_MemberDown, OSError):
                    self.router._mark_down(member_id, self.upstreams)
                    self.router.failovers += 1
                    remaining.extend(member_positions)
                    continue
                dispatch = _Dispatch(member_id, member_positions)
                up_reader = self.upstreams[member_id][0]
                task = asyncio.ensure_future(
                    self._pump(dispatch, up_reader))
                self.pumps.add(task)
                self.active_members.add(member_id)
                self.pending += 1

    async def _pump(self, dispatch: _Dispatch,
                    reader: asyncio.StreamReader) -> None:
        """Forward one member's response frames onto the merge queue."""
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    await self.queue.put(("down", dispatch, None))
                    return
                kind = frame.get("type") if isinstance(frame, dict) \
                    else None
                if kind == "shard":
                    await self.queue.put(("shard", dispatch, frame))
                elif kind == "need_instances":
                    await self.queue.put(("need", dispatch, frame))
                elif kind == "done":
                    await self.queue.put(("done", dispatch, frame))
                    return
                elif kind == "error":
                    await self.queue.put(("member_error", dispatch, frame))
                    return
                else:
                    await self.queue.put((
                        "member_error", dispatch,
                        {"message": f"unexpected frame {frame!r}"}))
                    return
        except (OSError, ProtocolError):
            await self.queue.put(("down", dispatch, None))

    # ------------------------------------------------------------------
    async def _on_shard(self, dispatch: _Dispatch, frame: dict) -> None:
        """Remap a member shard frame onto original positions; forward."""
        try:
            sub_indices = frame["indices"]
            raw_answers = frame["answers"]
        except (KeyError, TypeError) as exc:
            raise ProtocolError(
                f"fleet member {dispatch.member} sent a malformed shard "
                f"frame: {exc}") from exc
        dispatch.frames += 1
        indices: list[int] = []
        answers: list = []
        for sub_position, answer in zip(sub_indices, raw_answers):
            if not isinstance(sub_position, int) or not (
                    0 <= sub_position < len(dispatch.positions)):
                raise ProtocolError(
                    f"fleet member {dispatch.member} answered unknown "
                    f"position {sub_position!r}")
            position = dispatch.positions[sub_position]
            if position in self.answered:
                continue  # defensive: never double-deliver a position
            self.answered.add(position)
            indices.append(position)
            answers.append(answer)
        if not indices:
            return
        write_frame(self.writer, {"type": "shard",
                                  "shard": self.shards_out,
                                  "indices": indices, "answers": answers})
        await self.writer.drain()
        self.shards_out += 1
        self.router.shards_forwarded += 1

    async def _on_need(self, dispatch: _Dispatch, frame: dict) -> None:
        """Serve a member's missing digests: cache first, client second."""
        digests = frame.get("digests")
        if not isinstance(digests, list):
            raise ProtocolError(
                f"fleet member {dispatch.member} sent a malformed "
                f"need_instances frame")
        missing = [digest for digest in digests
                   if digest not in self.records]
        for digest in list(missing):
            cached = self.router.record_store.get(digest)
            if isinstance(cached, dict):
                self.records[digest] = cached
                missing.remove(digest)
        if missing:
            # The router has never seen these records: ask the client,
            # exactly as a single server would.
            write_frame(self.writer, {"type": "need_instances",
                                      "digests": missing})
            await self.writer.drain()
            reply = await read_frame(self.reader)
            if reply is None:
                raise ConnectionResetError(
                    "client closed mid-negotiation")
            if not (isinstance(reply, dict)
                    and reply.get("type") == "put_instances"):
                raise ProtocolError(
                    f"expected a put_instances frame after "
                    f"need_instances, got {reply!r}")
            for digest, record in self.router._checked_records(reply):
                self.records[digest] = record
            still = [digest for digest in missing
                     if digest not in self.records]
            if still:
                raise ProtocolError(
                    f"client could not supply instance digests {still!r}")
        pair = self.upstreams.get(dispatch.member)
        if pair is None:
            return  # member died while the request was queued
        write_frame(pair[1], {
            "type": "put_instances",
            "instances": [self.records[digest] for digest in digests]})
        await pair[1].drain()
        self.router.reships += len(digests)

    def _on_done(self, dispatch: _Dispatch, frame: dict) -> None:
        self.pending -= 1
        announced = frame.get("n_shards")
        if announced != dispatch.frames:
            raise ProtocolError(
                f"fleet member {dispatch.member} announced {announced} "
                f"shards but sent {dispatch.frames}")

    async def _release_member(self, member_id: str) -> None:
        """Dispatch positions parked behind the member's last request."""
        self.active_members.discard(member_id)
        parked = self.waiting.pop(member_id, None)
        if parked:
            await self._dispatch(parked, inline=False)

    async def _on_down(self, dispatch: _Dispatch) -> None:
        """Failover: rehash the dead member's unanswered positions."""
        self.pending -= 1
        self.router.failovers += 1
        self.router._mark_down(dispatch.member, self.upstreams)
        self.active_members.discard(dispatch.member)
        orphans = self.waiting.pop(dispatch.member, [])
        unanswered = [position for position in dispatch.positions
                      if position not in self.answered] + orphans
        if unanswered:
            await self._dispatch(unanswered, inline=False)


class RouterThread(EndpointThread):
    """A :class:`FleetRouter` on a dedicated thread and event loop.

    Construction blocks until the router socket is bound; ``close()``
    stops the loop with the bounded join.  Membership operations for
    blocking callers go through :meth:`EndpointThread.run_coroutine`.
    """

    def __init__(self, members: Mapping[str, tuple[str, int]],
                 **router_options) -> None:
        self.router = FleetRouter(members, **router_options)
        super().__init__(self.router, thread_name="repro-serving-fleet")

    def __enter__(self) -> "RouterThread":
        return self


def _member_main(conn, evaluator_factory, server_options) -> None:
    """Entry point of one fleet member process: serve until killed."""
    # The fork may have snapshotted another thread's hold on the wire
    # fingerprint lock; replace it before this process touches codecs.
    reinit_after_fork()

    async def main() -> None:
        if evaluator_factory is not None:
            evaluator = evaluator_factory()
        else:
            from repro.engine import Engine
            from repro.serving.async_evaluator import AsyncBatchEvaluator
            evaluator = AsyncBatchEvaluator(engine=Engine())
        server = WorkloadServer(evaluator, host="127.0.0.1", port=0,
                                **server_options)
        await server.start()
        conn.send(server.port)
        conn.close()
        await asyncio.Event().wait()  # serve until the process is killed

    asyncio.run(main())


class Fleet:
    """N ``WorkloadServer`` processes behind one router, blocking API.

    The whole serving fleet in one context manager: forks ``n_members``
    member server processes (each builds a **fresh** engine and
    evaluator in the child — no inherited lock state), waits for their
    ports, then stands up a :class:`FleetRouter` on a dedicated thread.
    Member processes are forked *before* the router thread starts, the
    same construction-time discipline as
    :class:`~repro.serving.executors.ProcessExecutor`.

    ``evaluator_factory`` (called in the child) customises the member
    evaluator — benchmarks use it to install instrumented executors;
    ``member_options`` pass through to each member's
    :class:`~repro.serving.net.WorkloadServer`
    (``max_inflight_shards``, ``max_inflight_per_connection``, ...).

    Failure injection and rolling restarts: :meth:`kill_member` is a
    hard SIGKILL (the router discovers the death on first contact and
    fails over); :meth:`drain_member`/:meth:`undrain_member` move a
    member out of/into the ring gracefully; :meth:`restart_member`
    forks a replacement under the same member id — same ring points, so
    zero digests move.
    """

    def __init__(self, n_members: int = 4, *,
                 evaluator_factory=None,
                 member_options: dict | None = None,
                 replicas: int = DEFAULT_REPLICAS,
                 record_cache_bytes: int = DEFAULT_RECORD_CACHE_BYTES,
                 start_method: str = "fork") -> None:
        if n_members < 1:
            raise ValueError(
                f"n_members must be a positive integer, got {n_members!r}")
        self._ctx = multiprocessing.get_context(start_method)
        self._evaluator_factory = evaluator_factory
        self._member_options = dict(member_options or {})
        self._processes: dict[str, object] = {}
        self._addresses: dict[str, tuple[str, int]] = {}
        try:
            for i in range(n_members):
                member_id = f"member-{i}"
                self._addresses[member_id] = self._spawn(member_id)
            self._thread = RouterThread(
                self._addresses, replicas=replicas,
                record_cache_bytes=record_cache_bytes)
        except BaseException:
            self._terminate_members()
            raise
        self.router = self._thread.router

    def _spawn(self, member_id: str) -> tuple[str, int]:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_member_main,
            args=(child_conn, self._evaluator_factory,
                  self._member_options),
            daemon=True, name=f"repro-fleet-{member_id}")
        process.start()
        child_conn.close()
        if not parent_conn.poll(timeouts.MEMBER_STARTUP_TIMEOUT):
            process.kill()
            raise RuntimeError(
                f"fleet member {member_id} did not report a port "
                f"within 30s")
        port = parent_conn.recv()
        parent_conn.close()
        self._processes[member_id] = process
        return ("127.0.0.1", port)

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The router's ``(host, port)`` — what clients connect to."""
        return self._thread.address

    def members(self) -> list[str]:
        return sorted(self._addresses)

    def client(self, **options) -> WorkloadClient:
        """A new blocking client connected to the router."""
        return WorkloadClient(*self.address, **options)

    # ------------------------------------------------------------------
    def kill_member(self, member_id: str) -> None:
        """Hard failure injection: SIGKILL, no goodbye to the router."""
        process = self._processes[member_id]
        process.kill()
        process.join()

    def drain_member(self, member_id: str) -> None:
        """Take a member out of the ring; in-flight work finishes."""
        with self.client() as admin:
            admin.drain(member=member_id)

    def undrain_member(self, member_id: str) -> None:
        """Put a drained member back into the ring."""
        with self.client() as admin:
            admin.undrain(member=member_id)

    def restart_member(self, member_id: str) -> None:
        """Fork a replacement under the same id (zero digests move)."""
        if member_id not in self._addresses:
            raise KeyError(f"unknown fleet member {member_id!r}")
        old = self._processes.get(member_id)
        if old is not None and old.is_alive():
            old.terminate()
            old.join()
        address = self._spawn(member_id)
        self._addresses[member_id] = address
        self._thread.run_coroutine(
            self.router.set_member(member_id, *address))

    def check_health(self) -> dict[str, bool]:
        """Ping every member through the router; heal/fail the ring."""
        return self._thread.run_coroutine(self.router.check_health())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the router thread, then terminate every member."""
        try:
            self._thread.close()
        finally:
            self._terminate_members()

    def _terminate_members(self) -> None:
        for process in self._processes.values():
            if process.is_alive():
                process.terminate()
        for process in self._processes.values():
            process.join(timeout=timeouts.PROCESS_JOIN_TIMEOUT)
            if process.is_alive():
                process.kill()
                process.join(timeout=timeouts.PROCESS_JOIN_TIMEOUT)

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<Fleet {len(self._addresses)} members "
                f"router={self.address[0]}:{self.address[1]}>")
