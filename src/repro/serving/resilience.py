"""Deadlines, bounded retries, and circuit breaking for the client edge.

The serving fleet (PR 7) made a *member* dying mid-request invisible to
clients; this module gives the client edge itself the same self-healing
shape.  Three small, composable pieces:

:class:`Deadline`
    A per-request time budget on the monotonic clock.  It flows into
    every blocking socket operation a request performs
    (``min(remaining, static timeout)`` — a deadline tightens timeouts,
    never loosens them), travels to the server as the optional
    ``deadline_ms`` field on workload frames, and lets admission
    control shed queued work nobody is waiting for anymore.

:class:`RetryPolicy`
    Bounded attempts with exponential backoff and **seeded** jitter —
    the same policy object always produces the same delay sequence, so
    chaos tests and CI replay identically.  Classification is explicit:
    transport failures (``OSError``, a byte stream dying mid-frame)
    are retryable because evaluation is pure and instances are
    content-addressed — replaying a workload re-sends refs, and the
    ``need_instances`` negotiation re-ships the corpus if the server
    restarted empty.  Peer-reported request failures, protocol bugs,
    and expired deadlines are not retryable: they would fail again.

:class:`CircuitBreaker`
    After K consecutive failures the backend stops dialing a peer that
    is down and fails fast with
    :class:`~repro.errors.ServiceUnavailable`; after a cooldown one
    half-open probe is allowed through, and its outcome closes or
    re-opens the circuit.

Everything here is synchronous by design — it runs on the blocking
client edge (:class:`~repro.serving.net.WorkloadClient`,
:class:`~repro.learning.backend.RemoteBackend`), never inside the
server's event loop (the async tier sheds by deadline instead of
sleeping; see :class:`~repro.serving.net.ShardGate`).
"""

from __future__ import annotations

import math
import random
import time
from collections.abc import Callable, Iterator
from typing import Any

from repro.errors import DeadlineExceeded, ServiceUnavailable

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
    "RetryState",
    "ServiceUnavailable",
    "default_retryable",
]


class Deadline:
    """A point on the monotonic clock a request must not outlive."""

    __slots__ = ("_at",)

    def __init__(self, at: float) -> None:
        self._at = at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """The deadline ``seconds`` from now."""
        if seconds < 0:
            raise ValueError(f"deadline budget must be >= 0, got {seconds!r}")
        return cls(time.monotonic() + seconds)

    # ------------------------------------------------------------------
    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self._at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._at

    def check(self, doing: str = "request") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` if expired."""
        if self.expired:
            raise DeadlineExceeded(f"deadline exceeded while {doing}")

    def io_timeout(self, cap: float | None = None,
                   doing: str = "waiting for the peer") -> float:
        """The socket timeout this deadline imposes: ``min(remaining, cap)``.

        Raises :class:`~repro.errors.DeadlineExceeded` instead of
        returning a zero (or negative) timeout — a blocking call with no
        budget left must not be issued at all.
        """
        remaining = self.remaining()
        if remaining <= 0:
            raise DeadlineExceeded(f"deadline exceeded before {doing}")
        return remaining if cap is None else min(remaining, cap)

    def ms(self) -> int:
        """Whole milliseconds left, rounded up (the wire ``deadline_ms``)."""
        return int(math.ceil(self.remaining() * 1000))

    def __repr__(self) -> str:
        return f"<Deadline remaining={self.remaining():.3f}s>"


def default_retryable(exc: BaseException) -> bool:
    """The default transient-vs-permanent classification.

    Retryable: every :class:`OSError` (connection refused/reset, socket
    timeouts, broken pipes) and
    :class:`~repro.serving.wire.TransportError` (the byte stream died
    mid-frame — truncation, unexpected EOF).  Not retryable: peer-
    reported failures (:class:`~repro.serving.wire.RemoteError` — the
    request itself is bad and would fail again), other protocol errors
    (a peer not speaking the protocol), expired deadlines, and every
    other :class:`~repro.errors.ReproError`.
    """
    # Imported here, not at module top: wire imports nothing from this
    # module, but keeping the one-way dependency explicit costs nothing
    # and the classification is called at failure time, never hot.
    from repro.serving.wire import RemoteError, TransportError

    if isinstance(exc, (DeadlineExceeded, ServiceUnavailable, RemoteError)):
        return False
    if isinstance(exc, TransportError):
        return True
    if isinstance(exc, OSError):
        return True
    return False


class RetryPolicy:
    """Bounded attempts, exponential backoff, seeded jitter.

    ``max_attempts`` counts *attempts*, not retries: the default 3 means
    one try plus at most two recoveries.  Delays between attempts are
    ``base_delay * multiplier**k`` capped at ``max_delay``, each scaled
    by a jitter factor drawn from ``random.Random(seed)`` — two states
    built from equal policies sleep identically, which is what makes
    chaos runs reproducible.  ``retryable`` may be overridden per policy
    (defaults to :func:`default_retryable`).
    """

    __slots__ = ("max_attempts", "base_delay", "multiplier", "max_delay",
                 "jitter", "seed", "retryable")

    def __init__(self, *, max_attempts: int = 3, base_delay: float = 0.05,
                 multiplier: float = 2.0, max_delay: float = 2.0,
                 jitter: float = 0.1, seed: int = 0,
                 retryable: Callable[[BaseException], bool] | None = None,
                 ) -> None:
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts!r}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter!r}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self.retryable = retryable if retryable is not None \
            else default_retryable

    def delays(self) -> Iterator[float]:
        """The (deterministic) sleep before each recovery attempt."""
        rng = random.Random(self.seed)
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            scale = 1.0 + (self.jitter * (2.0 * rng.random() - 1.0))
            yield min(delay, self.max_delay) * scale
            delay *= self.multiplier

    def start(self) -> "RetryState":
        """A fresh per-request budget over this policy."""
        return RetryState(self)

    def call(self, fn: Callable[[], Any], *,
             deadline: Deadline | None = None,
             on_retry: Callable[[BaseException], None] | None = None) -> Any:
        """Run ``fn`` under this policy; the retry loop in one place.

        ``on_retry`` fires once per recovery (after the backoff sleep),
        with the exception being recovered from — the hook counters and
        reconnects hang off.
        """
        state = self.start()
        while True:
            try:
                return fn()
            except Exception as exc:  # noqa: BLE001 - reclassified below
                state.backoff(exc, deadline=deadline)
                if on_retry is not None:
                    on_retry(exc)

    def __repr__(self) -> str:
        return (f"<RetryPolicy attempts={self.max_attempts} "
                f"base={self.base_delay}s x{self.multiplier} "
                f"cap={self.max_delay}s seed={self.seed}>")


class RetryState:
    """One request's consumable retry budget (attempts + delay schedule)."""

    __slots__ = ("policy", "attempts", "_delays")

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        #: Attempts made so far (the in-progress one included).
        self.attempts = 1
        self._delays = policy.delays()

    def backoff(self, exc: BaseException, *,
                deadline: Deadline | None = None) -> None:
        """Sleep before the next attempt, or decide there is none.

        Re-raises ``exc`` when it is not retryable or the attempt budget
        is spent; raises :class:`~repro.errors.DeadlineExceeded` (chained
        to ``exc``) when the deadline leaves no room to retry.  On
        return, the caller owns one more attempt.
        """
        if not self.policy.retryable(exc):
            raise exc
        try:
            delay = next(self._delays)
        except StopIteration:
            raise exc from None
        if deadline is not None:
            if deadline.remaining() <= delay:
                raise DeadlineExceeded(
                    f"deadline exceeded after {self.attempts} attempt(s): "
                    f"{exc}") from exc
            # A sleep never eats the whole remaining budget.
            delay = min(delay, deadline.remaining() / 2.0)
        if delay > 0:
            time.sleep(delay)
        self.attempts += 1


class CircuitBreaker:
    """Fail fast after K consecutive failures; probe after a cooldown.

    States: ``closed`` (normal), ``open`` (every :meth:`guard` raises
    :class:`~repro.errors.ServiceUnavailable` without touching the
    network), ``half_open`` (cooldown elapsed — exactly one caller is
    let through as the probe; its success closes the circuit, its
    failure re-opens it and restarts the cooldown).  Single-threaded by
    design, like the client edge it protects.
    """

    __slots__ = ("failure_threshold", "reset_after", "_clock",
                 "_consecutive", "_opened_at", "_probing", "opens")

    def __init__(self, *, failure_threshold: int = 5,
                 reset_after: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, "
                             f"got {failure_threshold!r}")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._consecutive = 0
        self._opened_at: float | None = None
        self._probing = False
        #: Times the circuit has opened (observability).
        self.opens = 0

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open`` (cooldown elapsed)."""
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.reset_after:
            return "half_open"
        return "open"

    def guard(self, peer: str = "peer") -> None:
        """Gate one request.  Raises when the circuit refuses it.

        In ``half_open`` the first guarded caller becomes the probe
        (allowed through); callers arriving while the probe is still
        outstanding are refused like the circuit were open.
        """
        state = self.state
        if state == "closed":
            return
        if state == "half_open" and not self._probing:
            self._probing = True
            return
        raise ServiceUnavailable(
            f"circuit breaker is {state} for {peer} after "
            f"{self._consecutive} consecutive failure(s); "
            f"retry after {self.reset_after}s")

    def record_success(self) -> None:
        self._consecutive = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._consecutive += 1
        self._probing = False
        if self._consecutive >= self.failure_threshold:
            if self._opened_at is None:
                self.opens += 1
            self._opened_at = self._clock()

    def stats(self) -> dict[str, object]:
        """JSON-encodable snapshot for ``stats()`` surfaces."""
        return {"state": self.state, "consecutive_failures":
                self._consecutive, "opens": self.opens,
                "failure_threshold": self.failure_threshold,
                "reset_after": self.reset_after}

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self.state} "
                f"failures={self._consecutive}/{self.failure_threshold}>")
