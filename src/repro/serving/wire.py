"""The pickle-free wire format of the serving network front-end.

Framing is length-prefixed JSON: every message is a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON.  ``pickle``
never touches a socket — deserialising a peer's pickle executes
attacker-chosen code, so the protocol is JSON end to end, with small
tagged codecs for the structured values JSON lacks:

* **twig queries** — structural ``{label, selected, branches}`` records
  (branch axes as ``"/"``/``"//"``), round-tripping the exact pattern
  including which node is selected;
* **documents** — nested ``{label, text, children}`` records preserving
  child order, so pre-order positions on the server's rebuilt copy equal
  pre-order positions on the client's original;
* **path queries / regexes** — structural AST records (atoms with label
  sets and multiplicity symbols; ``concat``/``union``/``star`` nodes),
  not concrete syntax, so round-tripping never depends on printer/parser
  agreement;
* **graphs and vertex ids** — vertex/edge lists; ids may be JSON scalars
  or (nested) tuples, encoded as ``{"__tuple__": [...]}``.

Answers travel identity-free, exactly like
:class:`~repro.serving.evaluator.ShardTask` results inside the process
executor: twig answers as pre-order positions (the client maps them onto
*its own* node objects), RPQ answers as vertex-id pairs, acceptance
answers as booleans.  :class:`WorkloadDecoder` (client side) and
:class:`WorkloadCodec` (server side) hold the per-instance position maps
needed for that decode.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.errors import ReproError
from repro.graphdb.graph import Graph, VertexId
from repro.graphdb.pathquery import PathAtom, PathQuery
from repro.graphdb.regex import Concat, Epsilon, Label, Regex, Star, Union
from repro.schema.multiplicity import Multiplicity
from repro.serving.workload import (
    ItemKind,
    ShardAnswer,
    Workload,
    WorkloadItem,
)
from repro.twig.ast import Axis, TwigNode, TwigQuery
from repro.xmltree.tree import XNode, XTree

#: Frame length prefix: 4-byte big-endian unsigned.
_LENGTH = struct.Struct(">I")

#: Refuse absurd frames before allocating for them (64 MiB).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ReproError):
    """Malformed frame or unencodable/undecodable payload."""


# ---------------------------------------------------------------------------
# Framing: length-prefixed JSON over asyncio streams and blocking sockets
# ---------------------------------------------------------------------------


def encode_frame(payload: Any) -> bytes:
    """One wire frame: length prefix + compact JSON."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds the "
                            f"{MAX_FRAME_BYTES} byte cap")
    return _LENGTH.pack(len(body)) + body


def _decode_body(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc


def _checked_length(prefix: bytes) -> int:
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"announced frame of {length} bytes exceeds "
                            f"the {MAX_FRAME_BYTES} byte cap")
    return length


async def read_frame(reader) -> Any | None:
    """Read one frame from an asyncio stream reader; ``None`` on clean EOF."""
    import asyncio

    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    try:
        body = await reader.readexactly(_checked_length(prefix))
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return _decode_body(body)


def write_frame(writer, payload: Any) -> None:
    """Queue one frame on an asyncio stream writer (caller drains)."""
    writer.write(encode_frame(payload))


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n and not chunks:
                return b""
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame_blocking(sock: socket.socket, payload: Any) -> int:
    """Send one frame; returns the number of bytes written (prefix incl.)."""
    data = encode_frame(payload)
    sock.sendall(data)
    return len(data)


def recv_frame_counted(sock: socket.socket) -> tuple[Any | None, int]:
    """Read one frame plus its on-wire size (``(None, 0)`` on clean EOF).

    The byte count feeds the remote backend's observability (bytes per
    round trip); the payload is exactly :func:`recv_frame_blocking`'s.
    """
    prefix = _recv_exactly(sock, _LENGTH.size)
    if not prefix:
        return None, 0
    length = _checked_length(prefix)
    body = _recv_exactly(sock, length)
    return _decode_body(body), _LENGTH.size + length


def recv_frame_blocking(sock: socket.socket) -> Any | None:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    payload, _ = recv_frame_counted(sock)
    return payload


# ---------------------------------------------------------------------------
# Value codecs
# ---------------------------------------------------------------------------


def _encode_vertex(v: VertexId) -> Any:
    if isinstance(v, tuple):
        return {"__tuple__": [_encode_vertex(x) for x in v]}
    if v is None or isinstance(v, (str, int, float, bool)):
        return v
    raise ProtocolError(
        f"vertex id {v!r} is not wire-encodable (scalars and tuples only)")


def _decode_vertex(obj: Any) -> VertexId:
    if isinstance(obj, dict):
        try:
            items = obj["__tuple__"]
        except KeyError:
            raise ProtocolError(f"malformed vertex id {obj!r}") from None
        return tuple(_decode_vertex(x) for x in items)
    return obj


def _encode_tree(node: XNode) -> dict:
    out: dict[str, Any] = {"label": node.label}
    if node.text is not None:
        out["text"] = node.text
    if node.children:
        out["children"] = [_encode_tree(c) for c in node.children]
    return out


def _decode_tree(obj: dict) -> XNode:
    try:
        node = XNode(obj["label"], text=obj.get("text"))
        for child in obj.get("children", ()):
            node.add(_decode_tree(child))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed document node: {exc}") from exc
    return node


def _encode_graph(graph: Graph) -> dict:
    vertices = [[_encode_vertex(v), graph.vertex_properties(v)]
                for v in graph.vertices()]
    edges = [[_encode_vertex(e.src), e.label, _encode_vertex(e.dst),
              dict(e.properties)] for e in graph.edges()]
    return {"vertices": vertices, "edges": edges}


def _decode_graph(obj: dict) -> Graph:
    graph = Graph()
    try:
        for vertex, properties in obj["vertices"]:
            graph.add_vertex(_decode_vertex(vertex), **properties)
        for src, label, dst, properties in obj["edges"]:
            graph.add_edge(_decode_vertex(src), label, _decode_vertex(dst),
                           **properties)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed graph: {exc}") from exc
    return graph


def encode_twig_query(query: TwigQuery) -> dict:
    def go(n: TwigNode) -> dict:
        out: dict[str, Any] = {"label": n.label}
        if n is query.selected:
            out["selected"] = True
        if n.branches:
            out["branches"] = [[axis.value, go(child)]
                               for axis, child in n.branches]
        return out

    return {"root_axis": query.root_axis.value, "root": go(query.root)}


def decode_twig_query(obj: dict) -> TwigQuery:
    selected: list[TwigNode] = []

    def go(o: dict) -> TwigNode:
        n = TwigNode(o["label"])
        if o.get("selected"):
            selected.append(n)
        for axis, child in o.get("branches", ()):
            n.add(Axis(axis), go(child))
        return n

    try:
        root = go(obj["root"])
        if len(selected) != 1:
            raise ProtocolError(
                f"twig query must mark exactly one selected node, "
                f"got {len(selected)}")
        return TwigQuery(Axis(obj["root_axis"]), root, selected[0])
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed twig query: {exc}") from exc


def _encode_regex(regex: Regex) -> dict:
    if isinstance(regex, Epsilon):
        return {"op": "epsilon"}
    if isinstance(regex, Label):
        return {"op": "label", "name": regex.name}
    if isinstance(regex, Concat):
        return {"op": "concat", "left": _encode_regex(regex.left),
                "right": _encode_regex(regex.right)}
    if isinstance(regex, Union):
        return {"op": "union", "left": _encode_regex(regex.left),
                "right": _encode_regex(regex.right)}
    if isinstance(regex, Star):
        return {"op": "star", "inner": _encode_regex(regex.inner)}
    raise ProtocolError(f"unencodable regex node {type(regex).__name__}")


def _decode_regex(obj: dict) -> Regex:
    try:
        op = obj["op"]
        if op == "epsilon":
            return Epsilon()
        if op == "label":
            return Label(obj["name"])
        if op == "concat":
            return Concat(_decode_regex(obj["left"]),
                          _decode_regex(obj["right"]))
        if op == "union":
            return Union(_decode_regex(obj["left"]),
                         _decode_regex(obj["right"]))
        if op == "star":
            return Star(_decode_regex(obj["inner"]))
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed regex: {exc}") from exc
    raise ProtocolError(f"unknown regex op {op!r}")


def encode_path_query(query: object) -> dict:
    """A path-shaped query: :class:`PathQuery` or raw :class:`Regex`."""
    if isinstance(query, PathQuery):
        return {"type": "path",
                "atoms": [[sorted(a.labels), a.multiplicity.value]
                          for a in query.atoms]}
    if isinstance(query, Regex):
        return {"type": "regex", "node": _encode_regex(query)}
    raise ProtocolError(
        f"unencodable path query of type {type(query).__name__}")


def decode_path_query(obj: dict) -> object:
    kind = obj.get("type")
    if kind == "path":
        try:
            return PathQuery(
                PathAtom(frozenset(labels), Multiplicity(mult))
                for labels, mult in obj["atoms"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed path query: {exc}") from exc
    if kind == "regex":
        return _decode_regex(obj["node"])
    raise ProtocolError(f"unknown path query type {kind!r}")


# ---------------------------------------------------------------------------
# Workload codec
# ---------------------------------------------------------------------------


class WorkloadCodec:
    """Encode/decode whole workloads plus their identity-free answers.

    Object identity is part of workload semantics: items sharing a
    document share a shard and an index snapshot, and acceptance items
    sharing a query object group into the same sub-shards.  Instances
    *and queries* therefore travel once each, in ``instances`` /
    ``queries`` tables, and items reference them by index — the decoded
    workload shards exactly like the original.
    Both ends keep per-instance pre-order node lists: the server encodes
    twig answer nodes as positions, the client decodes positions back
    onto its own node objects — the same identity-free trick the process
    executor uses, stretched across the socket.
    """

    def __init__(self) -> None:
        self._instances: list[object] = []
        self._index_of: dict[int, int] = {}
        self._queries: list[object] = []
        self._query_index_of: dict[int, int] = {}
        self._preorder: dict[int, list[XNode]] = {}

    # -- encoding side ---------------------------------------------------
    def _instance_ref(self, instance: object) -> int:
        key = id(instance)
        if key not in self._index_of:
            self._index_of[key] = len(self._instances)
            self._instances.append(instance)
        return self._index_of[key]

    def _query_ref(self, query: object, kind: ItemKind) -> int:
        key = id(query)
        if key not in self._query_index_of:
            self._query_index_of[key] = len(self._queries)
            if kind is ItemKind.TWIG:
                encoded = {"codec": "twig",
                           "q": encode_twig_query(query)}
            else:
                encoded = {"codec": "path", "q": encode_path_query(query)}
            self._queries.append(encoded)
        return self._query_index_of[key]

    def encode_workload(self, workload: Workload) -> dict:
        items: list[dict] = []
        for item in workload:
            if item.kind is ItemKind.TWIG:
                items.append({
                    "kind": "twig",
                    "query": self._query_ref(item.query, item.kind),
                    "instance": self._instance_ref(item.instance),
                })
            elif item.kind is ItemKind.RPQ:
                record: dict[str, Any] = {
                    "kind": "rpq",
                    "query": self._query_ref(item.query, item.kind),
                    "instance": self._instance_ref(item.instance),
                }
                if item.sources is not None:
                    record["sources"] = [_encode_vertex(v)
                                         for v in item.sources]
                items.append(record)
            else:
                items.append({
                    "kind": "accepts",
                    "query": self._query_ref(item.query, item.kind),
                    "word": list(item.word or ()),
                })
        instances: list[dict] = []
        for instance in self._instances:
            if isinstance(instance, XTree):
                instances.append({"type": "tree",
                                  "root": _encode_tree(instance.root)})
            elif isinstance(instance, Graph):
                instances.append({"type": "graph",
                                  **_encode_graph(instance)})
            else:
                raise ProtocolError(
                    f"unencodable instance {type(instance).__name__}")
        return {"instances": instances, "queries": self._queries,
                "items": items}

    # -- decoding side ---------------------------------------------------
    def decode_workload(self, obj: dict) -> Workload:
        try:
            instance_records = obj["instances"]
            query_records = obj["queries"]
            item_records = obj["items"]
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"malformed workload: {exc}") from exc
        self._instances = []
        for record in instance_records:
            kind = record.get("type")
            if kind == "tree":
                self._instances.append(XTree(_decode_tree(record["root"])))
            elif kind == "graph":
                self._instances.append(_decode_graph(record))
            else:
                raise ProtocolError(f"unknown instance type {kind!r}")
        self._queries = []
        for record in query_records:
            codec = record.get("codec") if isinstance(record, dict) else None
            if codec == "twig":
                self._queries.append(decode_twig_query(record["q"]))
            elif codec == "path":
                self._queries.append(decode_path_query(record["q"]))
            else:
                raise ProtocolError(f"unknown query codec {codec!r}")
        items: list[WorkloadItem] = []
        for record in item_records:
            kind = record.get("kind")
            if kind == "twig":
                items.append(WorkloadItem(
                    ItemKind.TWIG, self._resolve_query(record["query"]),
                    self._resolve(record["instance"])))
            elif kind == "rpq":
                sources = record.get("sources")
                items.append(WorkloadItem(
                    ItemKind.RPQ, self._resolve_query(record["query"]),
                    self._resolve(record["instance"]),
                    sources=None if sources is None else tuple(
                        _decode_vertex(v) for v in sources)))
            elif kind == "accepts":
                items.append(WorkloadItem(
                    ItemKind.ACCEPTS, self._resolve_query(record["query"]),
                    word=tuple(record["word"])))
            else:
                raise ProtocolError(f"unknown item kind {kind!r}")
        return Workload(items)

    def _resolve(self, index: object) -> object:
        if not isinstance(index, int) or not (
                0 <= index < len(self._instances)):
            raise ProtocolError(f"dangling instance reference {index!r}")
        return self._instances[index]

    def _resolve_query(self, index: object) -> object:
        if not isinstance(index, int) or not (
                0 <= index < len(self._queries)):
            raise ProtocolError(f"dangling query reference {index!r}")
        return self._queries[index]

    # -- answers ---------------------------------------------------------
    def _positions_of(self, instance: XTree) -> dict[int, int]:
        nodes = self._preorder_nodes(instance)
        return {id(node): position for position, node in enumerate(nodes)}

    def _preorder_nodes(self, instance: XTree) -> list[XNode]:
        key = id(instance)
        if key not in self._preorder:
            self._preorder[key] = list(instance.nodes())
        return self._preorder[key]

    def encode_shard_answer(self, workload: Workload,
                            shard_answer: ShardAnswer) -> dict:
        """Identity-free shard frame (positions / pairs / booleans)."""
        answers: list[Any] = []
        for position, answer in shard_answer:
            item = workload[position]
            if item.kind is ItemKind.TWIG:
                positions = self._positions_of(item.instance)
                answers.append([positions[id(node)] for node in answer])
            elif item.kind is ItemKind.RPQ:
                answers.append(sorted(
                    ([_encode_vertex(s), _encode_vertex(t)]
                     for s, t in answer), key=repr))
            else:
                answers.append(bool(answer))
        return {"type": "shard", "shard": shard_answer.shard,
                "indices": list(shard_answer.indices), "answers": answers}

    def decode_shard_answer(self, workload: Workload,
                            obj: dict) -> ShardAnswer:
        """Map a shard frame back onto the local workload's objects."""
        try:
            indices = tuple(obj["indices"])
            raw_answers = obj["answers"]
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"malformed shard frame: {exc}") from exc
        if len(indices) != len(raw_answers):
            raise ProtocolError("shard frame indices/answers misaligned")
        answers: list[Any] = []
        for position, raw in zip(indices, raw_answers):
            if not isinstance(position, int) or not (
                    0 <= position < len(workload)):
                raise ProtocolError(f"dangling item position {position!r}")
            item = workload[position]
            if item.kind is ItemKind.TWIG:
                nodes = self._preorder_nodes(item.instance)
                try:
                    answers.append([nodes[p] for p in raw])
                except (IndexError, TypeError) as exc:
                    raise ProtocolError(
                        f"twig positions out of range: {exc}") from exc
            elif item.kind is ItemKind.RPQ:
                answers.append({(_decode_vertex(s), _decode_vertex(t))
                                for s, t in raw})
            else:
                answers.append(bool(raw))
        return ShardAnswer(int(obj.get("shard", -1)), indices,
                           tuple(answers))
