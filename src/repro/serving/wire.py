"""The pickle-free wire format of the serving network front-end.

Framing is length-prefixed JSON: every message is a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON.  ``pickle``
never touches a socket — deserialising a peer's pickle executes
attacker-chosen code, so the protocol is JSON end to end, with small
tagged codecs for the structured values JSON lacks:

* **twig queries** — structural ``{label, selected, branches}`` records
  (branch axes as ``"/"``/``"//"``), round-tripping the exact pattern
  including which node is selected;
* **documents** — nested ``{label, text, children}`` records preserving
  child order, so pre-order positions on the server's rebuilt copy equal
  pre-order positions on the client's original;
* **path queries / regexes** — structural AST records (atoms with label
  sets and multiplicity symbols; ``concat``/``union``/``star`` nodes),
  not concrete syntax, so round-tripping never depends on printer/parser
  agreement;
* **graphs and vertex ids** — vertex/edge lists; ids may be JSON scalars
  or (nested) tuples, encoded as ``{"__tuple__": [...]}``.

Answers travel identity-free, exactly like
:class:`~repro.serving.evaluator.ShardTask` results inside the process
executor: twig answers as pre-order positions (the client maps them onto
*its own* node objects), RPQ answers as vertex-id pairs, acceptance
answers as booleans.  :class:`WorkloadDecoder` (client side) and
:class:`WorkloadCodec` (server side) hold the per-instance position maps
needed for that decode.

Instances are **content-addressed**: every full instance record carries a
structural digest (:func:`instance_digest` — SHA-256 over the canonical
JSON encoding, cached per instance version), and a client that knows the
server already holds a digest may send ``{"type": "ref", "digest": ...}``
instead of the full record.  The handshake is eviction-safe: a workload
referencing a digest the server no longer holds is answered with a
``need_instances`` frame listing the missing digests, the client replies
with one ``put_instances`` frame carrying the full records, and the
request proceeds — a stale client guess costs one extra round trip, never
an error.  ``put_instances`` is also a standalone request (answered with
an ``ok`` frame), so a session can pre-ship its corpus before the first
evaluation round.
"""

from __future__ import annotations

import asyncio
import copy as _copy
import hashlib
import json
import socket
import struct
import threading
import weakref
from collections.abc import Callable, Sequence
from typing import Any, Protocol

from repro.engine.version import instance_version
from repro.errors import ReproError
from repro.graphdb.graph import Graph, VertexId
from repro.graphdb.pathquery import PathAtom, PathQuery
from repro.graphdb.regex import Concat, Epsilon, Label, Regex, Star, Union
from repro.schema.multiplicity import Multiplicity
from repro.serving.workload import (
    ItemKind,
    ShardAnswer,
    Workload,
    WorkloadItem,
)
from repro.twig.ast import Axis, TwigNode, TwigQuery
from repro.xmltree.tree import XNode, XTree

#: Frame length prefix: 4-byte big-endian unsigned.
_LENGTH = struct.Struct(">I")

#: Refuse absurd frames before allocating for them (64 MiB).
MAX_FRAME_BYTES = 64 * 1024 * 1024

# The closed tag vocabularies of the protocol.  Every ``{"type": ...}`` /
# ``{"kind": ...}`` literal constructed or compared anywhere in the
# serving package must come from exactly one of these registries — the
# ``wire-codec`` analysis rule enforces it, so adding a frame type means
# adding it here first (and the registries stay the single place an
# exhaustiveness argument has to read).

#: Top-level frame ``"type"`` tags (workload request frames carry no
#: ``type`` key — any untagged dict frame is a workload).  ``ping`` /
#: ``drain`` / ``undrain`` / ``ring`` are the fleet-control frames: a
#: health probe (answered ``ok``), the graceful stop/resume of a
#: listener or fleet member (answered ``ok``), and the ring-membership
#: view a :class:`~repro.serving.fleet.FleetRouter` serves.
FRAME_TYPES = frozenset({
    "shard", "done", "error", "stats", "ok",
    "need_instances", "put_instances",
    "ping", "drain", "undrain", "ring",
})

#: Instance/query record ``"type"`` tags inside workload frames.
#: ``delta`` is a structural diff keyed ``(from digest -> to digest)``;
#: the same tag doubles as the standalone delta-push frame's ``type``
#: (a frame carrying only delta records), so it lives in exactly one
#: registry as the disjointness rule requires.
RECORD_TYPES = frozenset({"tree", "graph", "ref", "path", "regex",
                          "delta"})

#: Workload item ``"kind"`` tags (the wire spelling of
#: :class:`~repro.serving.workload.ItemKind`).
ITEM_KINDS = frozenset({"twig", "rpq", "accepts"})


class ProtocolError(ReproError):
    """Malformed frame or unencodable/undecodable payload."""


class TransportError(ProtocolError):
    """The byte stream died mid-frame (reset, truncation, unexpected EOF).

    The *retryable* half of the protocol-error space: nothing is known
    about whether the request was processed, but evaluation purity and
    content-addressed instances make a replay safe, so the resilience
    layer (:func:`repro.serving.resilience.default_retryable`) treats
    these as transient.  Plain :class:`ProtocolError` — a peer speaking
    the protocol wrong — stays permanent.
    """


class RemoteError(ProtocolError):
    """The peer processed the request and reported failure (``error`` frame).

    Never retried: the request itself was rejected, so a replay would
    fail identically.  Carries the optional machine-readable ``code``
    from the frame (``deadline_exceeded``, ``unavailable``, ...).
    """

    def __init__(self, message: str, *, code: str | None = None) -> None:
        super().__init__(message)
        self.code = code


class NeedInstances(ProtocolError):
    """A workload references digests the decoder's store does not hold.

    Raised by :meth:`WorkloadCodec.decode_workload` when a ``ref`` record
    cannot be resolved; the server turns it into a ``need_instances``
    frame (negotiation), while a decode *without* a store surfaces it as
    the protocol error it then is.
    """

    def __init__(self, digests: list[str]) -> None:
        super().__init__(
            f"workload references {len(digests)} unknown instance "
            f"digest(s): {digests[:3]}{'...' if len(digests) > 3 else ''}")
        self.digests = list(digests)


class InstanceStoreLike(Protocol):
    """What workload decoding needs from a content-addressed store."""

    def get(self, digest: str) -> object | None:
        ...

    def put(self, digest: str, instance: object, size: int) -> None:
        ...


# ---------------------------------------------------------------------------
# Framing: length-prefixed JSON over asyncio streams and blocking sockets
# ---------------------------------------------------------------------------


def encode_frame(payload: Any) -> bytes:
    """One wire frame: length prefix + compact JSON."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds the "
                            f"{MAX_FRAME_BYTES} byte cap")
    return _LENGTH.pack(len(body)) + body


def decode_frame(data: bytes) -> Any:
    """Decode one complete in-memory frame (:func:`encode_frame` inverse).

    The stream and blocking readers decode incrementally off their
    transports; this is the transport-free inverse for frames held fully
    in memory (tests, recorded captures, loopback paths).
    """
    if len(data) < _LENGTH.size:
        raise ProtocolError("truncated frame: missing length prefix")
    length = _checked_length(data[:_LENGTH.size])
    body = data[_LENGTH.size:]
    if len(body) != length:
        raise ProtocolError(f"frame length mismatch: prefix announces "
                            f"{length} bytes, frame carries {len(body)}")
    return _decode_body(body)


# repro: allow[wire-codec] body-only half of the framing layer, shared by
# the stream/blocking readers; the frame-level inverse pair is
# encode_frame/decode_frame above.
def _decode_body(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc


def _checked_length(prefix: bytes) -> int:
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"announced frame of {length} bytes exceeds "
                            f"the {MAX_FRAME_BYTES} byte cap")
    return length


async def read_frame(reader: asyncio.StreamReader) -> Any | None:
    """Read one frame from an asyncio stream reader; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TransportError("connection closed mid-frame") from exc
    try:
        body = await reader.readexactly(_checked_length(prefix))
    except asyncio.IncompleteReadError as exc:
        raise TransportError("connection closed mid-frame") from exc
    return _decode_body(body)


def write_frame(writer: asyncio.StreamWriter, payload: Any) -> None:
    """Queue one frame on an asyncio stream writer (caller drains)."""
    writer.write(encode_frame(payload))


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n and not chunks:
                return b""
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame_blocking(sock: socket.socket, payload: Any) -> int:
    """Send one frame; returns the number of bytes written (prefix incl.)."""
    data = encode_frame(payload)
    sock.sendall(data)
    return len(data)


def recv_frame_counted(sock: socket.socket) -> tuple[Any | None, int]:
    """Read one frame plus its on-wire size (``(None, 0)`` on clean EOF).

    The byte count feeds the remote backend's observability (bytes per
    round trip); the payload is exactly :func:`recv_frame_blocking`'s.
    """
    prefix = _recv_exactly(sock, _LENGTH.size)
    if not prefix:
        return None, 0
    length = _checked_length(prefix)
    body = _recv_exactly(sock, length)
    return _decode_body(body), _LENGTH.size + length


def recv_frame_blocking(sock: socket.socket) -> Any | None:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    payload, _ = recv_frame_counted(sock)
    return payload


# ---------------------------------------------------------------------------
# Value codecs
# ---------------------------------------------------------------------------


def _encode_vertex(v: VertexId) -> Any:
    if isinstance(v, tuple):
        return {"__tuple__": [_encode_vertex(x) for x in v]}
    if v is None or isinstance(v, (str, int, float, bool)):
        return v
    raise ProtocolError(
        f"vertex id {v!r} is not wire-encodable (scalars and tuples only)")


def _decode_vertex(obj: Any) -> VertexId:
    if isinstance(obj, dict):
        try:
            items = obj["__tuple__"]
        except KeyError:
            raise ProtocolError(f"malformed vertex id {obj!r}") from None
        return tuple(_decode_vertex(x) for x in items)
    return obj


def _encode_tree(node: XNode) -> dict:
    out: dict[str, Any] = {"label": node.label}
    if node.text is not None:
        out["text"] = node.text
    if node.children:
        out["children"] = [_encode_tree(c) for c in node.children]
    return out


def _decode_tree(obj: dict) -> XNode:
    try:
        node = XNode(obj["label"], text=obj.get("text"))
        for child in obj.get("children", ()):
            node.add(_decode_tree(child))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed document node: {exc}") from exc
    return node


def _encode_graph(graph: Graph) -> dict:
    vertices = [[_encode_vertex(v), graph.vertex_properties(v)]
                for v in graph.vertices()]
    edges = [[_encode_vertex(e.src), e.label, _encode_vertex(e.dst),
              dict(e.properties)] for e in graph.edges()]
    return {"vertices": vertices, "edges": edges}


def _decode_graph(obj: dict) -> Graph:
    graph = Graph()
    try:
        for vertex, properties in obj["vertices"]:
            graph.add_vertex(_decode_vertex(vertex), **properties)
        for src, label, dst, properties in obj["edges"]:
            graph.add_edge(_decode_vertex(src), label, _decode_vertex(dst),
                           **properties)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed graph: {exc}") from exc
    return graph


def encode_twig_query(query: TwigQuery) -> dict:
    def go(n: TwigNode) -> dict:
        out: dict[str, Any] = {"label": n.label}
        if n is query.selected:
            out["selected"] = True
        if n.branches:
            out["branches"] = [[axis.value, go(child)]
                               for axis, child in n.branches]
        return out

    return {"root_axis": query.root_axis.value, "root": go(query.root)}


def decode_twig_query(obj: dict) -> TwigQuery:
    selected: list[TwigNode] = []

    def go(o: dict) -> TwigNode:
        n = TwigNode(o["label"])
        if o.get("selected"):
            selected.append(n)
        for axis, child in o.get("branches", ()):
            n.add(Axis(axis), go(child))
        return n

    try:
        root = go(obj["root"])
        if len(selected) != 1:
            raise ProtocolError(
                f"twig query must mark exactly one selected node, "
                f"got {len(selected)}")
        return TwigQuery(Axis(obj["root_axis"]), root, selected[0])
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed twig query: {exc}") from exc


def _encode_regex(regex: Regex) -> dict:
    if isinstance(regex, Epsilon):
        return {"op": "epsilon"}
    if isinstance(regex, Label):
        return {"op": "label", "name": regex.name}
    if isinstance(regex, Concat):
        return {"op": "concat", "left": _encode_regex(regex.left),
                "right": _encode_regex(regex.right)}
    if isinstance(regex, Union):
        return {"op": "union", "left": _encode_regex(regex.left),
                "right": _encode_regex(regex.right)}
    if isinstance(regex, Star):
        return {"op": "star", "inner": _encode_regex(regex.inner)}
    raise ProtocolError(f"unencodable regex node {type(regex).__name__}")


def _decode_regex(obj: dict) -> Regex:
    try:
        op = obj["op"]
        if op == "epsilon":
            return Epsilon()
        if op == "label":
            return Label(obj["name"])
        if op == "concat":
            return Concat(_decode_regex(obj["left"]),
                          _decode_regex(obj["right"]))
        if op == "union":
            return Union(_decode_regex(obj["left"]),
                         _decode_regex(obj["right"]))
        if op == "star":
            return Star(_decode_regex(obj["inner"]))
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed regex: {exc}") from exc
    raise ProtocolError(f"unknown regex op {op!r}")


def encode_path_query(query: object) -> dict:
    """A path-shaped query: :class:`PathQuery` or raw :class:`Regex`."""
    if isinstance(query, PathQuery):
        return {"type": "path",
                "atoms": [[sorted(a.labels), a.multiplicity.value]
                          for a in query.atoms]}
    if isinstance(query, Regex):
        return {"type": "regex", "node": _encode_regex(query)}
    raise ProtocolError(
        f"unencodable path query of type {type(query).__name__}")


def decode_path_query(obj: dict) -> object:
    kind = obj.get("type")
    if kind == "path":
        try:
            return PathQuery(
                PathAtom(frozenset(labels), Multiplicity(mult))
                for labels, mult in obj["atoms"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed path query: {exc}") from exc
    if kind == "regex":
        return _decode_regex(obj["node"])
    raise ProtocolError(f"unknown path query type {kind!r}")


# ---------------------------------------------------------------------------
# Content-addressed instance records
# ---------------------------------------------------------------------------


def encode_instance_record(instance: object) -> dict:
    """The full wire record of one instance (no digest field)."""
    if isinstance(instance, XTree):
        return {"type": "tree", "root": _encode_tree(instance.root)}
    if isinstance(instance, Graph):
        return {"type": "graph", **_encode_graph(instance)}
    raise ProtocolError(f"unencodable instance {type(instance).__name__}")


def _canonical_record_bytes(record: dict) -> bytes:
    """The digestable form: sorted-key compact JSON, ``digest`` excluded."""
    if "digest" in record:
        record = {k: v for k, v in record.items() if k != "digest"}
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def record_digest(record: dict) -> tuple[str, int]:
    """``(digest, encoded_size)`` of a wire instance record."""
    body = _canonical_record_bytes(record)
    return hashlib.sha256(body).hexdigest(), len(body)


# Per-instance ``version -> (digest, size)`` memo, weakly keyed so a dead
# corpus never pins its fingerprints.  A mutation that bumps the instance
# version (``XTree.invalidate()``, any ``Graph`` mutator) forces a
# re-encode on the next fingerprint, so the digest tracks structure; a
# version bump without a structural change recomputes to the same digest
# (and the server keeps serving its warm copy — correct either way).
_fingerprints: "weakref.WeakKeyDictionary[object, tuple[int, str, int]]" \
    = weakref.WeakKeyDictionary()
_fingerprint_lock = threading.Lock()

#: Per-instance ``[(version, digest, size), ...]`` of recently
#: fingerprinted versions (oldest first, bounded).  Delta shipping walks
#: it newest-first looking for a version the peer already holds whose
#: edit-log window is still replayable.  Guarded by
#: ``_fingerprint_lock`` like the memo above.
_digest_history: "weakref.WeakKeyDictionary[object, list[tuple[int, str, int]]]" \
    = weakref.WeakKeyDictionary()
_DIGEST_HISTORY_CAP = 8


def reinit_after_fork() -> None:
    """Replace the module-level fingerprint lock with a fresh one.

    A process forked while *another* thread held ``_fingerprint_lock``
    inherits the lock in its held state — permanently, since the owning
    thread does not exist in the child — and the first fingerprint call
    there deadlocks.  Forked children that use the wire codecs (the
    fleet member processes) call this first thing, before any thread
    exists in the child, so the hazard window closes for good.  The memo
    itself is value-cached and safe to inherit.
    """
    global _fingerprint_lock
    _fingerprint_lock = threading.Lock()


def _fingerprint_with_record(
        instance: object) -> tuple[str, int, dict | None]:
    """``(digest, size, record)`` with at most one structural encode.

    On a memo hit the record is ``None`` (the memo deliberately does not
    pin encoded corpora in memory — callers encode only when they must
    ship); on a miss, the record built for hashing is returned so a
    cold full-ship never encodes the same instance twice.
    """
    version = instance_version(instance)
    with _fingerprint_lock:
        entry = _fingerprints.get(instance)
    if entry is not None and entry[0] == version:
        return entry[1], entry[2], None
    record = encode_instance_record(instance)
    digest, size = record_digest(record)
    with _fingerprint_lock:
        _fingerprints[instance] = (version, digest, size)
        history = _digest_history.setdefault(instance, [])
        if not history or history[-1][0] != version:
            history.append((version, digest, size))
            if len(history) > _DIGEST_HISTORY_CAP:
                del history[0]
    return digest, size, record


def instance_fingerprint(instance: object) -> tuple[str, int]:
    """``(digest, encoded_size)`` of an instance, cached per version."""
    digest, size, _ = _fingerprint_with_record(instance)
    return digest, size


def instance_digest(instance: object) -> str:
    """The stable structural digest of a document or graph."""
    return instance_fingerprint(instance)[0]


# ---------------------------------------------------------------------------
# Delta records: structural diffs keyed (old digest -> new digest)
# ---------------------------------------------------------------------------
#
# A mutation round used to cost a full re-ship; with the instances' edit
# logs (:mod:`repro.editlog`) it costs a ``delta`` record instead: the
# replayable ops taking the version the peer already holds to the
# current one.  The receiver applies the ops to its stored copy,
# verifies the resulting digest, and falls back to the ordinary
# ``need_instances`` negotiation on any mismatch — the delta path is an
# optimisation layered on the content-addressed protocol, never a
# correctness dependency.


def encode_delta(instance: object, from_digest: str, to_digest: str,
                 ops: Sequence[dict]) -> dict:
    """One ``delta`` record from an instance's local edit-log ops.

    Local ops carry live node references alongside their JSON-able
    fields; this strips them to the wire form (tree ops: child-index
    ``path`` plus snapshot records; graph ops: wire-encoded vertex ids).
    """
    wire_ops: list[dict] = []
    if isinstance(instance, XTree):
        target = "tree"
        for op in ops:
            name = op.get("op")
            if name == "insert":
                wire_ops.append({"op": "insert", "path": list(op["path"]),
                                 "index": op["index"],
                                 "node": op["record"]})
            elif name == "delete":
                wire_ops.append({"op": "delete", "path": list(op["path"])})
            elif name == "relabel":
                wire_ops.append({"op": "relabel", "path": list(op["path"]),
                                 "label": op["label"], "text": op["text"]})
            else:
                raise ProtocolError(f"unencodable tree edit op {name!r}")
    elif isinstance(instance, Graph):
        target = "graph"
        for op in ops:
            name = op.get("op")
            if name == "add_vertex":
                wire_ops.append({"op": "add_vertex",
                                 "v": _encode_vertex(op["v"]),
                                 "props": dict(op["props"])})
            elif name == "add_edge":
                wire_ops.append({"op": "add_edge",
                                 "src": _encode_vertex(op["src"]),
                                 "label": op["label"],
                                 "dst": _encode_vertex(op["dst"]),
                                 "props": dict(op["props"])})
            elif name == "remove_edge":
                wire_ops.append({"op": "remove_edge",
                                 "src": _encode_vertex(op["src"]),
                                 "label": op["label"],
                                 "dst": _encode_vertex(op["dst"])})
            elif name == "remove_vertex":
                wire_ops.append({"op": "remove_vertex",
                                 "v": _encode_vertex(op["v"])})
            else:
                raise ProtocolError(f"unencodable graph edit op {name!r}")
    else:
        raise ProtocolError(
            f"undiffable instance {type(instance).__name__}")
    return {"type": "delta", "target": target,
            "from": from_digest, "to": to_digest, "ops": wire_ops}


def decode_delta(record: dict) -> dict:
    """Validate a ``delta`` record; returns the normalised form the
    appliers below consume (ops keep wire-encoded vertex ids)."""
    try:
        target = record["target"]
        from_digest = record["from"]
        to_digest = record["to"]
        ops = record["ops"]
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed delta record: {exc}") from exc
    if target not in ("tree", "graph"):
        raise ProtocolError(f"unknown delta target {target!r}")
    if not isinstance(from_digest, str) or not isinstance(to_digest, str):
        raise ProtocolError("delta digests must be strings")
    if not isinstance(ops, list) \
            or not all(isinstance(op, dict) for op in ops):
        raise ProtocolError("delta ops must be a list of objects")
    return {"target": target, "from": from_digest, "to": to_digest,
            "ops": ops}


def apply_delta_to_instance(instance: object, delta: dict) -> None:
    """Replay a decoded delta through the instance's tracked mutators.

    Replaying through the mutators (not by hand) extends the receiving
    instance's *own* edit log, so the engine's incremental-reindex path
    and any onward delta shipping keep working from the patched copy.
    The caller verifies the resulting digest.
    """
    try:
        if delta["target"] == "tree":
            assert isinstance(instance, XTree)
            for op in delta["ops"]:
                name = op.get("op")
                if name == "insert":
                    instance.insert_subtree(
                        instance.node_at(op["path"]),
                        _decode_tree(op["node"]), op["index"])
                elif name == "delete":
                    instance.delete_subtree(instance.node_at(op["path"]))
                elif name == "relabel":
                    instance.relabel_node(
                        instance.node_at(op["path"]),
                        label=op["label"], text=op["text"])
                else:
                    raise ProtocolError(f"unknown tree edit op {name!r}")
        else:
            assert isinstance(instance, Graph)
            for op in delta["ops"]:
                name = op.get("op")
                if name == "add_vertex":
                    instance.add_vertex(_decode_vertex(op["v"]),
                                        **op.get("props", {}))
                elif name == "add_edge":
                    instance.add_edge(_decode_vertex(op["src"]),
                                      op["label"],
                                      _decode_vertex(op["dst"]),
                                      **op.get("props", {}))
                elif name == "remove_edge":
                    instance.remove_edge(_decode_vertex(op["src"]),
                                         op["label"],
                                         _decode_vertex(op["dst"]))
                elif name == "remove_vertex":
                    instance.remove_vertex(_decode_vertex(op["v"]))
                else:
                    raise ProtocolError(f"unknown graph edit op {name!r}")
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"delta does not apply: {exc}") from exc


def _record_node_at(record: dict, path: Sequence[int]) -> dict:
    node = record
    for index in path:
        try:
            node = node["children"][index]
        except (KeyError, IndexError, TypeError):
            raise ProtocolError(
                f"delta path {list(path)!r} falls off the record") from None
    return node


def apply_record_delta(record: dict, delta: dict) -> dict:
    """Patch an *encoded* instance record (digest field excluded) with a
    decoded delta, returning a new record; the input is not mutated.

    This is the router's path: it caches encoded records, not decoded
    instances, so a delta for a cached digest can be applied — and the
    resulting digest verified — without ever materialising the
    instance.  The patched tree record reproduces the encoder's shape
    exactly (``text``/``children`` keys omitted when empty), so digests
    computed from it match digests computed from the patched instance.
    """
    out = _copy.deepcopy(record)
    out.pop("digest", None)
    try:
        if delta["target"] == "tree":
            root = out["root"]
            for op in delta["ops"]:
                name = op.get("op")
                path = op.get("path", ())
                if name == "insert":
                    parent = _record_node_at(root, path)
                    parent.setdefault("children", []).insert(
                        op["index"], _copy.deepcopy(op["node"]))
                elif name == "delete":
                    parent = _record_node_at(root, path[:-1])
                    children = parent.get("children")
                    if children is None:
                        raise ProtocolError(
                            "delta delete path falls off the record")
                    del children[path[-1]]
                    if not children:
                        del parent["children"]
                elif name == "relabel":
                    node = _record_node_at(root, path)
                    node["label"] = op["label"]
                    if op.get("text") is None:
                        node.pop("text", None)
                    else:
                        node["text"] = op["text"]
                else:
                    raise ProtocolError(f"unknown tree edit op {name!r}")
        else:
            vertices = out["vertices"]
            edges = out["edges"]
            for op in delta["ops"]:
                name = op.get("op")
                if name == "add_vertex":
                    v = op["v"]
                    for entry in vertices:
                        if entry[0] == v:
                            entry[1].update(op.get("props", {}))
                            break
                    else:
                        vertices.append([v, dict(op.get("props", {}))])
                elif name == "add_edge":
                    key = (op["src"], op["label"], op["dst"])
                    for entry in edges:
                        if (entry[0], entry[1], entry[2]) == key:
                            entry[3].update(op.get("props", {}))
                            break
                    else:
                        edges.append([op["src"], op["label"], op["dst"],
                                      dict(op.get("props", {}))])
                elif name == "remove_edge":
                    key = (op["src"], op["label"], op["dst"])
                    for i, entry in enumerate(edges):
                        if (entry[0], entry[1], entry[2]) == key:
                            del edges[i]
                            break
                    else:
                        raise ProtocolError(
                            f"delta removes unknown edge {key!r}")
                elif name == "remove_vertex":
                    v = op["v"]
                    vertices[:] = [e for e in vertices if e[0] != v]
                    edges[:] = [e for e in edges
                                if e[0] != v and e[2] != v]
                else:
                    raise ProtocolError(f"unknown graph edit op {name!r}")
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"delta does not apply to record: {exc}") \
            from exc
    return out


def apply_delta_copy(base: object, delta: dict) -> object:
    """The default (safe) applier: patch a structural copy of ``base``,
    verify the resulting digest, and return the copy.

    Never mutates ``base`` — the conservative choice when the caller
    cannot prove no concurrent evaluation still references it.
    """
    copier = getattr(base, "copy", None)
    if copier is None:
        raise ProtocolError(
            f"cannot copy instance {type(base).__name__} for delta")
    patched = copier()
    apply_delta_to_instance(patched, delta)
    digest = instance_digest(patched)
    if digest != delta["to"]:
        raise ProtocolError(
            f"delta digest mismatch: patched instance hashes to "
            f"{digest!r}, delta promised {delta['to']!r}")
    return patched


def delta_record_for(instance: object, digest: str, size: int,
                     known_digests: set[str]) -> dict | None:
    """A ``delta`` record shipping ``instance`` against a version the
    peer already holds, or ``None`` when no profitable delta exists.

    Requires a surviving edit-log window from a fingerprinted older
    version whose digest is in ``known_digests``; gives up (full ship)
    when the delta would not be smaller than the record itself.
    """
    edits_since = getattr(instance, "edits_since", None)
    if edits_since is None or not known_digests:
        return None
    with _fingerprint_lock:
        history = list(_digest_history.get(instance) or ())
    for old_version, old_digest, _old_size in reversed(history):
        if old_digest == digest or old_digest not in known_digests:
            continue
        ops = edits_since(old_version)
        if ops is None:
            # The log no longer reaches this version; older history
            # entries need an even wider window, so stop looking.
            return None
        delta = encode_delta(instance, old_digest, digest, ops)
        _, delta_size = record_digest(delta)
        if delta_size >= size:
            return None
        return delta
    return None


# ---------------------------------------------------------------------------
# Workload codec
# ---------------------------------------------------------------------------


class WorkloadCodec:
    """Encode/decode whole workloads plus their identity-free answers.

    Object identity is part of workload semantics: items sharing a
    document share a shard and an index snapshot, and acceptance items
    sharing a query object group into the same sub-shards.  Instances
    *and queries* therefore travel once each, in ``instances`` /
    ``queries`` tables, and items reference them by index — the decoded
    workload shards exactly like the original.
    Twig answers travel as pre-order positions.  A positions-native
    producer (the server streams the evaluator with
    ``positions_native=True``) encodes the engine's position tuples
    directly; the client decodes positions back onto its own node
    objects at the answer boundary — the same identity-free trick the
    process executor uses, stretched across the socket.

    Instances are content-addressed end to end.  Encoding with
    ``known_digests`` replaces instances the peer already holds with
    ``ref`` records (the codec tracks what it shipped, what it ref'd, and
    the bytes the refs saved); decoding with a ``store`` (any mapping
    with ``get(digest)``/``put(digest, instance, size)``) canonicalises
    every record by digest, so repeated rounds resolve to **the same
    decoded object** — which is exactly what lets the engine's weak-keyed
    index map serve a warm index instead of rebuilding one per round.
    ``preorder`` optionally supplies the pre-order node list from a
    shared snapshot (e.g. :meth:`repro.engine.core.Engine.preorder_nodes`)
    for *decode*-side position -> node mapping, instead of re-walking the
    tree per codec; a positions-native encoder never needs one.
    """

    def __init__(self, *, preorder: Callable[[XTree], Sequence[XNode]]
                 | None = None,
                 delta_applier: Callable[[object, dict], object]
                 | None = None) -> None:
        self._instances: list[object] = []
        self._index_of: dict[int, int] = {}
        self._queries: list[object] = []
        self._query_index_of: dict[int, int] = {}
        self._preorder: dict[int, list[XNode]] = {}
        self._preorder_fn = preorder
        self._instance_by_digest: dict[str, object] = {}
        # Decode-side overlay: every digest this codec (= this request)
        # has resolved, pinned for the request's lifetime.  It makes one
        # negotiation round always sufficient — on a tiny store, putting
        # a missing instance can evict *another* instance the same
        # workload references, but the overlay still holds it — and it
        # keeps retried decodes of one frame resolving to the same
        # objects.
        self._resolved_by_digest: dict[str, object] = {}
        #: Digests shipped as full records by the last encode (in order).
        self.shipped_digests: list[str] = []
        #: Digests sent as refs by the last encode.
        self.ref_digests: list[str] = []
        #: Digests shipped as deltas by the last encode (the *new*
        #: digest of each; the peer holds it after a successful apply).
        self.delta_digests: list[str] = []
        #: Approximate encoded bytes the refs/deltas of the last encode
        #: saved vs full records.
        self.bytes_saved = 0
        # How this codec turns a delta record into an instance given its
        # base.  The default patches a structural copy (safe anywhere);
        # the server installs an in-place applier that reuses the stored
        # instance — and its warm index — when nothing else is using it.
        self._delta_applier = delta_applier or apply_delta_copy

    # -- encoding side ---------------------------------------------------
    def _instance_ref(self, instance: object) -> int:
        key = id(instance)
        if key not in self._index_of:
            self._index_of[key] = len(self._instances)
            self._instances.append(instance)
        return self._index_of[key]

    def _query_ref(self, query: object, kind: ItemKind) -> int:
        key = id(query)
        if key not in self._query_index_of:
            self._query_index_of[key] = len(self._queries)
            if kind is ItemKind.TWIG:
                encoded = {"codec": "twig",
                           "q": encode_twig_query(query)}
            else:
                encoded = {"codec": "path", "q": encode_path_query(query)}
            self._queries.append(encoded)
        return self._query_index_of[key]

    def encode_workload(self, workload: Workload, *,
                        known_digests: set[str] | None = None) -> dict:
        """Encode one workload; instances the peer holds become refs.

        ``known_digests`` is the caller's registry of digests the peer is
        *believed* to hold (a wrong guess is repaired by the
        ``need_instances`` negotiation).  Full records always carry their
        digest so the peer can store them.
        """
        items: list[dict] = []
        for item in workload:
            if item.kind is ItemKind.TWIG:
                items.append({
                    "kind": "twig",
                    "query": self._query_ref(item.query, item.kind),
                    "instance": self._instance_ref(item.instance),
                })
            elif item.kind is ItemKind.RPQ:
                record: dict[str, Any] = {
                    "kind": "rpq",
                    "query": self._query_ref(item.query, item.kind),
                    "instance": self._instance_ref(item.instance),
                }
                if item.sources is not None:
                    record["sources"] = [_encode_vertex(v)
                                         for v in item.sources]
                items.append(record)
            else:
                items.append({
                    "kind": "accepts",
                    "query": self._query_ref(item.query, item.kind),
                    "word": list(item.word or ()),
                })
        instances: list[dict] = []
        self.shipped_digests = []
        self.ref_digests = []
        self.delta_digests = []
        self.bytes_saved = 0
        for instance in self._instances:
            digest, size, record = _fingerprint_with_record(instance)
            self._instance_by_digest[digest] = instance
            if known_digests is not None and digest in known_digests:
                instances.append({"type": "ref", "digest": digest})
                self.ref_digests.append(digest)
                self.bytes_saved += size
                continue
            delta = None
            if known_digests is not None:
                delta = delta_record_for(instance, digest, size,
                                         known_digests)
            if delta is not None:
                instances.append(delta)
                self.delta_digests.append(digest)
                self.bytes_saved += size - record_digest(delta)[1]
                continue
            if record is None:  # warm fingerprint, cold ship
                record = encode_instance_record(instance)
            record["digest"] = digest
            instances.append(record)
            self.shipped_digests.append(digest)
        return {"instances": instances, "queries": self._queries,
                "items": items}

    def register_instance(self, instance: object) -> str:
        """Make ``instance`` addressable by digest for later encodes."""
        digest, _ = instance_fingerprint(instance)
        self._instance_by_digest[digest] = instance
        return digest

    def resolved_digests(self) -> frozenset[str]:
        """Digests this codec (= this request) has resolved so far."""
        return frozenset(self._resolved_by_digest)

    def set_delta_applier(
            self, applier: Callable[[object, dict], object]) -> None:
        """Install how this codec turns delta records into instances.

        The server seam: its applier patches the *stored* instance in
        place (keeping the warm index) when no in-flight request still
        references the base — a decision that needs the codec itself,
        so it cannot be closed over at construction time.
        """
        self._delta_applier = applier

    def instance_for(self, digest: str) -> object | None:
        """The instance this codec knows under ``digest``, if any."""
        return self._instance_by_digest.get(digest)

    def encode_put_instances(self, digests: Sequence[str]) -> dict:
        """One ``put_instances`` frame carrying the requested full records.

        Only digests of instances this codec has encoded (full or ref)
        can be produced — anything else is a protocol error.
        """
        records: list[dict] = []
        for digest in digests:
            instance = self._instance_by_digest.get(digest)
            if instance is None:
                raise ProtocolError(
                    f"peer requested unknown instance digest {digest!r}")
            record = encode_instance_record(instance)
            record["digest"] = digest
            records.append(record)
        return {"type": "put_instances", "instances": records}

    # -- decoding side ---------------------------------------------------
    @staticmethod
    def _decode_instance_record(record: dict) -> object:
        kind = record.get("type")
        if kind == "tree":
            return XTree(_decode_tree(record["root"]))
        if kind == "graph":
            return _decode_graph(record)
        raise ProtocolError(f"unknown instance type {kind!r}")

    def _resolve_record(self, record: dict,
                        store: InstanceStoreLike | None) -> object:
        """Decode one full record, canonicalised through ``store``.

        The digest is *verified* against the record body before anything
        enters the store — a client bug can cost itself wrong refs, but
        it can never poison another session's cache entry.
        """
        digest = record.get("digest")
        if store is None or digest is None:
            return self._decode_instance_record(record)
        cached = self._resolved_by_digest.get(digest)
        if cached is None:
            cached = store.get(digest)
        if cached is not None:
            self._resolved_by_digest[digest] = cached
            return cached
        actual, size = record_digest(record)
        if actual != digest:
            raise ProtocolError(
                f"instance digest mismatch: announced {digest!r}, "
                f"encoded body hashes to {actual!r}")
        instance = self._decode_instance_record(record)
        store.put(digest, instance, size)
        self._resolved_by_digest[digest] = instance
        return instance

    def _resolve_delta(self, record: dict, store: InstanceStoreLike | None,
                       missing: list[str]) -> object | None:
        """Resolve one ``delta`` record to an instance.

        Resolution order: the *target* digest may already be held (a
        retried or concurrent request applied it first); otherwise the
        base is looked up and patched through the codec's applier.  Any
        failure — unknown base, inapplicable ops, digest mismatch —
        degrades to a ``need_instances`` negotiation for the target
        digest, exactly like an unresolvable ref.
        """
        delta = decode_delta(record)
        to_digest = delta["to"]
        instance = self._resolved_by_digest.get(to_digest)
        if instance is None and store is not None:
            instance = store.get(to_digest)
        if instance is not None:
            self._resolved_by_digest[to_digest] = instance
            return instance
        base = self._resolved_by_digest.get(delta["from"])
        if base is None and store is not None:
            base = store.get(delta["from"])
        if base is None:
            missing.append(to_digest)
            return None
        try:
            instance = self._delta_applier(base, delta)
        except ProtocolError:
            missing.append(to_digest)
            return None
        if store is not None:
            _, size = instance_fingerprint(instance)
            store.put(to_digest, instance, size)
        self._resolved_by_digest[to_digest] = instance
        return instance

    def encode_delta_frame(self, records: Sequence[dict]) -> dict:
        """A standalone delta-push frame (the ``put_instances`` of the
        delta path): apply these diffs ahead of future workloads."""
        return {"type": "delta", "instances": list(records)}

    def decode_delta_frame(
            self, obj: dict,
            store: InstanceStoreLike | None) -> tuple[list[str], list[str]]:
        """Apply every delta of a delta-push frame.

        Returns ``(applied, missing)`` target digests; missing ones are
        reported back so the pusher can fall back to full records.
        """
        try:
            records = obj["instances"]
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"malformed delta frame: {exc}") from exc
        applied: list[str] = []
        missing: list[str] = []
        for record in records:
            if not isinstance(record, dict):
                raise ProtocolError("delta frame entries must be records")
            instance = self._resolve_delta(record, store, missing)
            if instance is not None:
                applied.append(record.get("to"))
        return applied, missing

    def decode_put_instances(self, obj: dict,
                             store: InstanceStoreLike | None) -> list[str]:
        """Store every record of a ``put_instances`` frame; the digests."""
        try:
            records = obj["instances"]
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"malformed put_instances: {exc}") from exc
        stored: list[str] = []
        for record in records:
            if not isinstance(record, dict) or "digest" not in record:
                raise ProtocolError(
                    "put_instances records must carry a digest")
            self._resolve_record(record, store)
            stored.append(record["digest"])
        return stored

    def decode_workload(self, obj: dict, *,
                        store: InstanceStoreLike | None = None) -> Workload:
        """Decode one workload frame, resolving refs through ``store``.

        Raises :class:`NeedInstances` (listing every missing digest at
        once) when a ``ref`` cannot be resolved — the server's cue to
        negotiate, re-raised as-is on a storeless decode.
        """
        try:
            instance_records = obj["instances"]
            query_records = obj["queries"]
            item_records = obj["items"]
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"malformed workload: {exc}") from exc
        self._instances = []
        missing: list[str] = []
        for record in instance_records:
            kind = record.get("type") if isinstance(record, dict) else None
            if kind == "ref":
                digest = record.get("digest")
                if not isinstance(digest, str):
                    raise ProtocolError(f"malformed instance ref {record!r}")
                instance = self._resolved_by_digest.get(digest)
                if instance is None and store is not None:
                    instance = store.get(digest)
                    if instance is not None:
                        self._resolved_by_digest[digest] = instance
                if instance is None:
                    missing.append(digest)
                self._instances.append(instance)
            elif kind == "delta":
                self._instances.append(
                    self._resolve_delta(record, store, missing))
            elif kind in ("tree", "graph"):
                self._instances.append(self._resolve_record(record, store))
            else:
                raise ProtocolError(f"unknown instance type {kind!r}")
        if missing:
            raise NeedInstances(missing)
        self._queries = []
        for record in query_records:
            codec = record.get("codec") if isinstance(record, dict) else None
            if codec == "twig":
                self._queries.append(decode_twig_query(record["q"]))
            elif codec == "path":
                self._queries.append(decode_path_query(record["q"]))
            else:
                raise ProtocolError(f"unknown query codec {codec!r}")
        items: list[WorkloadItem] = []
        for record in item_records:
            kind = record.get("kind")
            if kind == "twig":
                items.append(WorkloadItem(
                    ItemKind.TWIG, self._resolve_query(record["query"]),
                    self._resolve(record["instance"])))
            elif kind == "rpq":
                sources = record.get("sources")
                items.append(WorkloadItem(
                    ItemKind.RPQ, self._resolve_query(record["query"]),
                    self._resolve(record["instance"]),
                    sources=None if sources is None else tuple(
                        _decode_vertex(v) for v in sources)))
            elif kind == "accepts":
                items.append(WorkloadItem(
                    ItemKind.ACCEPTS, self._resolve_query(record["query"]),
                    word=tuple(record["word"])))
            else:
                raise ProtocolError(f"unknown item kind {kind!r}")
        return Workload(items)

    def _resolve(self, index: object) -> object:
        if not isinstance(index, int) or not (
                0 <= index < len(self._instances)):
            raise ProtocolError(f"dangling instance reference {index!r}")
        return self._instances[index]

    def _resolve_query(self, index: object) -> object:
        if not isinstance(index, int) or not (
                0 <= index < len(self._queries)):
            raise ProtocolError(f"dangling query reference {index!r}")
        return self._queries[index]

    # -- answers ---------------------------------------------------------
    def _positions_of(self, instance: XTree) -> dict[int, int]:
        nodes = self._preorder_nodes(instance)
        return {id(node): position for position, node in enumerate(nodes)}

    def _preorder_nodes(self, instance: XTree) -> list[XNode]:
        key = id(instance)
        if key not in self._preorder:
            # With a shared snapshot supplier (the server passes the
            # engine's indexed pre-order), repeated rounds over a cached
            # instance reuse one enumeration instead of re-walking the
            # tree per request.
            if self._preorder_fn is not None:
                self._preorder[key] = list(self._preorder_fn(instance))
            else:
                self._preorder[key] = list(instance.nodes())
        return self._preorder[key]

    def encode_shard_answer(self, workload: Workload,
                            shard_answer: ShardAnswer, *,
                            positions_native: bool = False) -> dict:
        """Identity-free shard frame (positions / pairs / booleans).

        With ``positions_native=True`` twig answers are already pre-order
        position tuples (a positions-native evaluator stream) and pass
        straight into the frame — no per-request node enumeration, no
        ``id -> position`` map.  The frame bytes are identical either
        way, so decoders cannot tell the difference.
        """
        answers: list[Any] = []
        for position, answer in shard_answer:
            item = workload[position]
            if item.kind is ItemKind.TWIG:
                if positions_native:
                    answers.append([int(p) for p in answer])
                    continue
                positions = self._positions_of(item.instance)
                answers.append([positions[id(node)] for node in answer])
            elif item.kind is ItemKind.RPQ:
                answers.append(sorted(
                    ([_encode_vertex(s), _encode_vertex(t)]
                     for s, t in answer), key=repr))
            else:
                answers.append(bool(answer))
        return {"type": "shard", "shard": shard_answer.shard,
                "indices": list(shard_answer.indices), "answers": answers}

    def decode_shard_answer(self, workload: Workload,
                            obj: dict) -> ShardAnswer:
        """Map a shard frame back onto the local workload's objects."""
        try:
            indices = tuple(obj["indices"])
            raw_answers = obj["answers"]
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"malformed shard frame: {exc}") from exc
        if len(indices) != len(raw_answers):
            raise ProtocolError("shard frame indices/answers misaligned")
        answers: list[Any] = []
        for position, raw in zip(indices, raw_answers):
            if not isinstance(position, int) or not (
                    0 <= position < len(workload)):
                raise ProtocolError(f"dangling item position {position!r}")
            item = workload[position]
            if item.kind is ItemKind.TWIG:
                nodes = self._preorder_nodes(item.instance)
                try:
                    answers.append([nodes[p] for p in raw])
                except (IndexError, TypeError) as exc:
                    raise ProtocolError(
                        f"twig positions out of range: {exc}") from exc
            elif item.kind is ItemKind.RPQ:
                answers.append({(_decode_vertex(s), _decode_vertex(t))
                                for s, t in raw})
            else:
                answers.append(bool(raw))
        return ShardAnswer(int(obj.get("shard", -1)), indices,
                           tuple(answers))
