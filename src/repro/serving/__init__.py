"""repro.serving — the batched, sharded evaluation service atop the engine.

The paper's learners converge by re-evaluating an evolving hypothesis
against *fixed* instances after every user interaction; :mod:`repro.engine`
made one such evaluation cheap.  This package fans that seam out: because
per-instance indexes are independent, a workload — one hypothesis over many
documents or graphs, one instance under many queries, or any mix — slices
into per-instance **shards** that evaluate independently and merge back in
item order.  The interactive sessions route their per-interaction
re-evaluation loops through this service, and executors decide where the
shards run without changing a single answer.

Architecture
------------
:class:`~repro.serving.workload.Workload` /
:class:`~repro.serving.workload.WorkloadResult`
    An ordered, immutable batch of evaluation items and its
    position-aligned answers.  ``Workload.twig(query, documents)``,
    ``Workload.twig_queries(queries, document)``, ``Workload.rpq(...)``,
    ``Workload.accepts(...)`` build the common shapes; ``+`` concatenates.

:class:`~repro.serving.executors.SerialExecutor`,
:class:`~repro.serving.executors.ThreadExecutor`,
:class:`~repro.serving.executors.ProcessExecutor`
    Pluggable, order-preserving shard runners: inline, a persistent thread
    pool sharing one thread-safe engine, or a persistent process pool fed
    picklable :class:`~repro.serving.evaluator.ShardTask` records whose
    workers return identity-free answers (pre-order positions, vertex
    pairs, booleans).

:class:`~repro.serving.evaluator.BatchEvaluator`
    The service: shards a workload, hoists per-query work (canonical
    forms) out of the per-item loop, runs shard chunks on the executor,
    and decodes worker answers against its own engine's snapshots.
    ``run_stream`` / ``selects_stream`` / ``accepts_stream`` /
    ``map_stream`` surface answers shard-by-shard (completion order,
    position-tagged) instead of waiting on the whole batch — the
    interactive sessions consume these.

:class:`~repro.serving.async_evaluator.AsyncBatchEvaluator`
    The asyncio facade: the same workloads, shards, and executors driven
    from an event loop without blocking it; ``stream()`` is an async
    generator of :class:`~repro.serving.workload.ShardAnswer` records and
    ``run()`` is the deterministic ordered merge.

:class:`~repro.serving.net.WorkloadServer` /
:class:`~repro.serving.net.ServerThread` /
:class:`~repro.serving.net.WorkloadClient`
    The network front-end: a pickle-free length-prefixed JSON protocol
    (:mod:`repro.serving.wire`) over ``asyncio.start_server``, streaming
    shard frames as they complete; the blocking client decodes answers
    onto its *own* instances (twig answers by pre-order position), so a
    remote run is answer-identical to a local one.

:class:`~repro.serving.instance_cache.InstanceStore`
    The server's content-addressed instance cache: decoded documents and
    graphs keyed by structural digest
    (:func:`~repro.serving.wire.instance_digest`), shared across
    connections, bounded LRU by encoded size.  Clients send ``ref``
    records for digests the server holds — the corpus ships once, its
    indexes stay warm, and an eviction is repaired by one
    ``need_instances`` round trip instead of an error.

Contracts
---------
* **Parity**: ``run(workload).answers[i]`` equals the serial engine call
  for item ``i`` — same node objects, same document order — on every
  executor.
* **Shard snapshot consistency**: each shard resolves its instance index
  once, so a concurrent mutation lands fully before or fully after any
  given shard, never inside it (the process executor, which cannot share
  snapshots with workers, detects a mid-batch mutation and raises instead
  of decoding positions across versions).
* **Determinism**: answers merge by item position; executor scheduling
  cannot reorder or change results, so sessions behave identically under
  any executor.

Typical use::

    from repro.serving import BatchEvaluator, ThreadExecutor, Workload

    evaluator = BatchEvaluator(executor=ThreadExecutor(max_workers=4))
    answers = evaluator.evaluate_twig_batch(hypothesis, documents)
    flags = evaluator.selects_batch(hypothesis, candidate_nodes)
    result = evaluator.run(Workload.twig(h1, docs) + Workload.rpq(r, graphs))
"""

from repro.serving.async_evaluator import AsyncBatchEvaluator
from repro.serving.evaluator import BatchEvaluator, ShardTask
from repro.serving.faults import (
    ChaosProxy,
    KillAfter,
    Refuse,
    Stall,
    Truncate,
    periodic_plan,
    seeded_plan,
)
from repro.serving.fleet import Fleet, FleetRouter, RouterThread
from repro.serving.executors import (
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    ThreadExecutor,
)
from repro.serving.instance_cache import InstanceStore
from repro.serving.net import (
    EndpointThread,
    ServerThread,
    ShardGate,
    WorkloadClient,
    WorkloadServer,
)
from repro.serving.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    ServiceUnavailable,
)
from repro.serving.ring import HashRing
from repro.serving.wire import (
    NeedInstances,
    ProtocolError,
    RemoteError,
    TransportError,
    WorkloadCodec,
    instance_digest,
)
from repro.serving.workload import (
    ItemKind,
    Shard,
    ShardAnswer,
    Workload,
    WorkloadItem,
    WorkloadResult,
)

__all__ = [
    "AsyncBatchEvaluator",
    "BatchEvaluator",
    "ChaosProxy",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "EndpointThread",
    "Fleet",
    "FleetRouter",
    "HashRing",
    "InstanceStore",
    "KillAfter",
    "RouterThread",
    "ItemKind",
    "NeedInstances",
    "ProcessExecutor",
    "ProtocolError",
    "Refuse",
    "RemoteError",
    "RetryPolicy",
    "SerialExecutor",
    "ServerThread",
    "ServiceUnavailable",
    "Shard",
    "ShardAnswer",
    "ShardExecutor",
    "ShardGate",
    "ShardTask",
    "Stall",
    "ThreadExecutor",
    "TransportError",
    "Truncate",
    "Workload",
    "WorkloadClient",
    "WorkloadCodec",
    "WorkloadItem",
    "WorkloadResult",
    "WorkloadServer",
    "instance_digest",
    "periodic_plan",
    "seeded_plan",
]
