"""The batched, sharded evaluation service on top of the engine.

:class:`BatchEvaluator` evaluates whole workloads — one hypothesis over
many instances, one instance under many queries, or any mix — by slicing
the workload into per-instance shards and running shard chunks on a
pluggable :class:`~repro.serving.executors.ShardExecutor`.

Correctness contracts (enforced by the parity and concurrency suites):

* **Answer parity.**  ``run(workload).answers[i]`` equals the serial
  ``engine.evaluate_twig`` / ``evaluate_rpq`` / ``accepts`` call for item
  ``i`` — for twig items, the *same node objects* in document order, on
  every executor.  Process workers never return node copies: they ship
  pre-order positions, and the parent maps positions onto its own index
  snapshot (positions are stable for a fixed tree version).
* **Shard snapshot consistency.**  Each shard resolves its instance's
  index exactly once, so a concurrent mutation (plus ``invalidate()``)
  lands either entirely before or entirely after any given shard — a
  batch never mixes two versions of one instance within a shard.  The
  process executor cannot re-resolve a worker's snapshot, so it pins the
  parent-side snapshot at submission and *raises* if the instance version
  moved before decode, rather than risking positions mapped across
  versions.
* **Deterministic merge.**  Shard answers merge back by item position;
  scheduling order can never reorder results.

Two consumption shapes share those contracts: :meth:`BatchEvaluator.run`
materialises the whole position-aligned result, and
:meth:`BatchEvaluator.run_stream` yields each shard's answers the moment
its future completes (``executor.submit`` per shard, lazily windowed to
the executor's width) — the sessions' streaming classification loops and
the async/network front-end (:mod:`repro.serving.async_evaluator`,
:mod:`repro.serving.net`) are built on it.  Streaming only changes *when*
answers become visible, never what they are.

Batching also does strictly less work than the serial loop: canonical
query forms are hoisted once per workload (not recomputed per call), and
:meth:`BatchEvaluator.selects_batch` materialises each document's answer
set once to classify any number of candidate nodes against it — the
per-interaction loop the interactive sessions previously ran one
``engine.selects`` call per candidate.
"""

from __future__ import annotations

import concurrent.futures
from collections import OrderedDict
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any

from repro.engine import Engine, get_engine, instance_version
from repro.graphdb.graph import Graph, VertexId
from repro.serving.executors import SerialExecutor, ShardExecutor
from repro.serving.wire import instance_fingerprint
from repro.serving.workload import (
    ItemKind,
    Shard,
    ShardAnswer,
    Word,
    Workload,
    WorkloadResult,
)
from repro.twig.ast import TwigQuery
from repro.xmltree.tree import XNode, XTree


@dataclass(frozen=True)
class ShardTask:
    """A picklable shard: everything a process worker needs, nothing more.

    ``payload`` is the instance in transfer form — the document's root
    :class:`~repro.xmltree.tree.XNode` (plain structure, no caches or
    id-keyed maps) or the :class:`~repro.graphdb.graph.Graph` itself;
    acceptance shards carry no instance.  ``digest`` is the instance's
    structural content address
    (:func:`~repro.serving.wire.instance_fingerprint`): a worker keeps a
    small digest-keyed cache of reconstructed instances, so repeated
    rounds over the same instance reuse the worker's warm index instead
    of rebuilding it per batch (positions are structural, so answers off
    the cached copy are identical).  Answers come back identity-free
    (positions / vertex pairs / booleans), ready for the parent to decode
    against its own objects.
    """

    kind: ItemKind
    payload: object
    queries: tuple
    words: tuple[Word, ...] | None = None
    sources: tuple = ()
    digest: str | None = None


#: Per-worker-process digest -> reconstructed instance (LRU by count).
#: Strong references on purpose: they keep the worker engine's weak-keyed
#: indexes alive between batches.  A plain OrderedDict rather than
#: :class:`~repro.engine.cache.LRUCache` because the drift check below
#: needs per-key removal, which LRUCache does not expose.
_WORKER_INSTANCE_CAP = 64
_worker_instances: "OrderedDict[str, object]" = OrderedDict()


def _worker_instance(task: ShardTask, rebuild: Callable[[], object]) -> object:
    """The worker's canonical instance for a task (digest-cached).

    Entries are *content-verified* both entering and leaving the cache:
    ``task.digest`` was computed at task construction, but the payload
    can drift past it — an in-process "isolated" executor hands the
    parent's live objects straight to this function, and a real pool's
    feeder thread pickles the payload after submission — so a payload
    whose digest no longer matches evaluates uncached, and a cached
    entry whose content drifted (the parent mutated the live object it
    lent us) is dropped and rebuilt instead of silently answering for a
    structure the caller no longer has.  The hit-path check is one memo
    lookup (:func:`~repro.serving.wire.instance_fingerprint` caches per
    instance version); only an actual mutation pays a re-encode.
    """
    if task.digest is None:
        return rebuild()
    instance = _worker_instances.get(task.digest)
    if instance is not None \
            and instance_fingerprint(instance)[0] != task.digest:
        del _worker_instances[task.digest]
        instance = None
    if instance is None:
        instance = rebuild()
        if instance_fingerprint(instance)[0] != task.digest:
            return instance
        _worker_instances[task.digest] = instance
        while len(_worker_instances) > _WORKER_INSTANCE_CAP:
            _worker_instances.popitem(last=False)
    else:
        _worker_instances.move_to_end(task.digest)
    return instance


def _run_shard_task(task: ShardTask) -> tuple:
    """Evaluate one shard in a worker process (identity-free answers)."""
    engine = get_engine()  # the worker process's own engine
    if task.kind is ItemKind.TWIG:
        # The cached tree is a *copy*: in-process isolated executors hand
        # over the parent's live root, whose later mutations a fresh
        # XTree wrapper (version 0) would hide from the hit-path digest
        # check — a frozen snapshot cannot drift under its digest.  One
        # O(n) copy per (digest, worker), amortised across every batch
        # that hits the warm index.
        tree = _worker_instance(task, lambda: XTree(task.payload.copy()))
        doc_index = engine.document(tree)
        return tuple(doc_index.evaluate_indices(q) for q in task.queries)
    if task.kind is ItemKind.RPQ:
        graph = _worker_instance(task, lambda: task.payload)
        graph_index = engine.graph(graph)
        return tuple(graph_index.evaluate_rpq(q, sources)
                     for q, sources in zip(task.queries, task.sources))
    return tuple(engine.accepts(task.queries[0], word)
                 for word in task.words or ())


def _run_task_chunk(chunk: tuple[ShardTask, ...]) -> tuple:
    """Worker entry point: one pickle round-trip per chunk, not per shard."""
    return tuple(_run_shard_task(task) for task in chunk)


def _pin_preorder(tree: XTree) -> tuple[int, list[XNode]]:
    """The tree's (version, pre-order node list) in one cheap traversal.

    ``XNode.iter`` pre-order is the order of
    :class:`~repro.engine.document.IndexedDocument` (and of the worker's
    rebuilt copy), so worker positions map onto these node objects
    directly.
    """
    return instance_version(tree), list(tree.nodes())


def group_candidates_by_tree(
    candidates: Sequence[tuple[XTree, XNode]],
) -> tuple[list[XTree], dict[int, list[int]]]:
    """Distinct documents (first-occurrence order) plus, per document,
    the candidate positions living in it.

    THE document-identity grouping of every ``selects*`` membership
    shape — the batch evaluator here and every
    :class:`~repro.learning.backend.EvaluationBackend` share this one
    implementation, so grouping semantics cannot silently diverge
    between the serving and learning layers.
    """
    documents: list[XTree] = []
    positions: dict[int, list[int]] = {}
    for i, (tree, _) in enumerate(candidates):
        group = positions.get(id(tree))
        if group is None:
            positions[id(tree)] = group = []
            documents.append(tree)
        group.append(i)
    return documents, positions


def classify_candidates(candidates: Sequence[tuple[XTree, XNode]],
                        documents: Sequence[XTree],
                        answers: Sequence[Sequence[XNode]]) -> list[bool]:
    """Per-candidate selection flags from per-document answer sets."""
    selected: dict[int, set[int]] = {
        id(doc): {id(n) for n in answer}
        for doc, answer in zip(documents, answers)
    }
    return [id(node) in selected[id(tree)] for tree, node in candidates]


def stream_select_flags(
    stream: Callable[["Workload"], Iterator[ShardAnswer]],
    query: TwigQuery | None,
    candidates: Sequence[tuple[XTree, XNode]],
) -> Iterator[list[tuple[int, bool]]]:
    """Shared streamed classification: ``[(position, selected), ...]``
    groups, one per distinct document, as that document's shard answer
    arrives from ``stream`` (any ``Workload -> Iterator[ShardAnswer]``
    callable — a local ``run_stream``, a backend stream, or a remote
    client).  The union of groups covers every candidate position
    exactly once; only arrival order depends on the producer.
    """
    if not candidates:
        return
    if query is None:
        yield [(i, False) for i in range(len(candidates))]
        return
    documents, positions = group_candidates_by_tree(candidates)
    for shard_answer in stream(Workload.twig(query, documents)):
        out: list[tuple[int, bool]] = []
        for doc_position, answer in shard_answer:
            selected = {id(n) for n in answer}
            for i in positions[id(documents[doc_position])]:
                out.append((i, id(candidates[i][1]) in selected))
        yield out


def _chunks(seq: Sequence, width: int) -> list[tuple]:
    """Split into at most ``width`` contiguous, size-balanced chunks."""
    n = len(seq)
    width = max(1, min(width, n))
    base, extra = divmod(n, width)
    out, start = [], 0
    for i in range(width):
        size = base + (1 if i < extra else 0)
        out.append(tuple(seq[start:start + size]))
        start += size
    return out


class BatchEvaluator:
    """Evaluate workloads over the engine seam, shard by shard."""

    def __init__(self, *, engine: Engine | None = None,
                 executor: ShardExecutor | None = None) -> None:
        self.engine = engine if engine is not None else get_engine()
        self.executor = executor if executor is not None else SerialExecutor()

    # ------------------------------------------------------------------
    # The service entry point
    # ------------------------------------------------------------------
    def run(self, workload: Workload) -> WorkloadResult:
        """Evaluate every item; answers aligned with item order."""
        shards = workload.shards()
        if not shards:
            return WorkloadResult(workload, (), self.executor.name, 0)
        if self.executor.isolated:
            shard_answers = self._run_isolated(shards)
        else:
            shard_answers = self._run_shared(shards)
        answers: list = [None] * len(workload)
        for shard, shard_ans in zip(shards, shard_answers):
            for position, answer in zip(shard.indices, shard_ans):
                answers[position] = answer
        return WorkloadResult(workload, tuple(answers), self.executor.name,
                              len(shards))

    # ------------------------------------------------------------------
    # Streaming: per-shard futures, answers in completion order
    # ------------------------------------------------------------------
    def run_stream(self, workload: Workload, *,
                   positions_native: bool = False,
                   ) -> Iterator[ShardAnswer]:
        """Yield each shard's answers as soon as that shard completes.

        Shards are submitted one future each (``executor.submit``),
        lazily windowed to the executor's width, and surfaced in
        *completion* order — the first answers arrive while later shards
        are still evaluating (or, on a non-pooled executor, before later
        shards have even been submitted).  Every yielded answer is
        value-identical to the corresponding :meth:`run` answer;
        reassembling by ``ShardAnswer.indices`` reproduces
        ``run(workload).answers`` exactly.

        ``positions_native=True`` keeps twig answers as the engine's
        pre-order position tuples instead of materialising node lists —
        the shape a transport that re-encodes answers as positions anyway
        (the wire codec) consumes directly.  RPQ / acceptance answers are
        identity-free either way and are unaffected.
        """
        shards = workload.shards()
        if not shards:
            return
        submit, decode = self._shard_plan(
            shards, positions_native=positions_native)
        for i, raw in self._stream_futures(submit, len(shards)):
            yield ShardAnswer(i, shards[i].indices, decode(i, raw))

    def _stream_futures(
        self, submit: Callable[[int], concurrent.futures.Future],
        count: int,
    ) -> Iterator[tuple[int, Any]]:
        """Lazily-windowed completion-order drive of ``count`` futures.

        Submissions are capped at the executor's width, so a width-1
        executor yields its first result before later tasks are even
        submitted; abandoning the iterator cancels whatever is still
        pending.  The single loop behind every synchronous streaming API.
        """
        width = max(1, self.executor.parallelism())
        pending: dict[concurrent.futures.Future, int] = {}
        next_task = 0
        try:
            while next_task < count or pending:
                while next_task < count and len(pending) < width:
                    pending[submit(next_task)] = next_task
                    next_task += 1
                done, _ = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED)
                for future in done:
                    yield pending.pop(future), future.result()
        finally:
            for future in pending:
                future.cancel()

    def _shard_plan(self, shards: list[Shard], *,
                    positions_native: bool = False) -> tuple[
            Callable[[int], concurrent.futures.Future],
            Callable[[int, tuple], tuple]]:
        """Per-shard ``(submit, decode)`` callables for the streaming paths.

        Mirrors the batch paths exactly: the shared plan hoists canonical
        twig forms once and evaluates against the caller's engine; the
        isolated plan pins pre-order snapshots *before* any submission and
        decodes worker positions against them (raising on a mid-flight
        mutation, same as :meth:`_run_isolated`).

        With ``positions_native=True`` twig answers stay position tuples:
        the shared plan evaluates via ``evaluate_indices`` (no node lists
        built at all), and the isolated plan pins only the instance
        *version* — worker positions pass through untouched, still
        refusing to cross a mid-flight mutation.
        """
        if self.executor.isolated:
            tasks = [self._make_task(shard) for shard in shards]

            def submit(i: int) -> concurrent.futures.Future:
                return self.executor.submit(_run_shard_task, tasks[i])

            if positions_native:
                versions = {
                    i: instance_version(shard.items[0].instance)
                    for i, shard in enumerate(shards)
                    if shard.kind is ItemKind.TWIG
                }

                def decode(i: int, raw: tuple) -> tuple:
                    if shards[i].kind is ItemKind.TWIG:
                        self._check_version(shards[i], versions[i])
                    return raw
            else:
                snapshots = {
                    i: _pin_preorder(shard.items[0].instance)
                    for i, shard in enumerate(shards)
                    if shard.kind is ItemKind.TWIG
                }

                def decode(i: int, raw: tuple) -> tuple:
                    return self._decode(shards[i], raw, snapshots.get(i))

            return submit, decode

        twig_keys = self._hoist_twig_keys(shards)
        engine = self.engine

        def submit_shared(i: int) -> concurrent.futures.Future:
            return self.executor.submit(
                self._eval_shard, engine, shards[i], twig_keys,
                positions_native)

        def decode_shared(i: int, raw: tuple) -> tuple:
            return raw

        return submit_shared, decode_shared

    @staticmethod
    def _hoist_twig_keys(shards: list[Shard]) -> dict[int, tuple]:
        # Canonicalise each distinct twig query once per batch — the
        # serial loop pays this on every single call.
        twig_keys: dict[int, tuple] = {}
        for shard in shards:
            if shard.kind is ItemKind.TWIG:
                for item in shard.items:
                    if id(item.query) not in twig_keys:
                        twig_keys[id(item.query)] = item.query.canonical()
        return twig_keys

    # ------------------------------------------------------------------
    # Shared-engine path (serial / thread executors)
    # ------------------------------------------------------------------
    def _run_shared(self, shards: list[Shard]) -> list[tuple]:
        twig_keys = self._hoist_twig_keys(shards)
        engine = self.engine

        def run_chunk(chunk: tuple[Shard, ...]) -> tuple:
            return tuple(self._eval_shard(engine, s, twig_keys)
                         for s in chunk)

        chunk_results = self.executor.map(
            run_chunk, _chunks(shards, self.executor.parallelism()))
        return [ans for chunk in chunk_results for ans in chunk]

    @staticmethod
    def _eval_shard(engine: Engine, shard: Shard,
                    twig_keys: dict[int, tuple],
                    positions_native: bool = False) -> tuple:
        # One index snapshot per shard: every item in the shard sees the
        # same version of its instance (mutation atomicity contract).
        if shard.kind is ItemKind.TWIG:
            doc_index = engine.document(shard.items[0].instance)
            if positions_native:
                return tuple(
                    doc_index.evaluate_indices(item.query,
                                               twig_keys[id(item.query)])
                    for item in shard.items)
            return tuple(
                doc_index.evaluate(item.query, twig_keys[id(item.query)])
                for item in shard.items)
        if shard.kind is ItemKind.RPQ:
            graph_index = engine.graph(shard.items[0].instance)
            return tuple(graph_index.evaluate_rpq(item.query, item.sources)
                         for item in shard.items)
        return tuple(engine.accepts(item.query, item.word)
                     for item in shard.items)

    # ------------------------------------------------------------------
    # Isolated path (process executor: picklable tasks in, positions out)
    # ------------------------------------------------------------------
    def _run_isolated(self, shards: list[Shard]) -> list[tuple]:
        # Pin each twig shard's (version, pre-order nodes) *before*
        # submission: worker positions decode against the structure that
        # was current when the batch left, and a mutation racing the
        # batch is detected (version moved past the pinned snapshot)
        # instead of silently mapping positions onto different nodes.
        # Deliberately NOT engine.document() — decode needs only the
        # node order, and building full parent-side indexes here would
        # duplicate exactly the work the batch ships to the workers.
        snapshots = {
            id(s): _pin_preorder(s.items[0].instance)
            for s in shards if s.kind is ItemKind.TWIG
        }
        tasks = [self._make_task(s) for s in shards]
        chunk_results = self.executor.map(
            _run_task_chunk, _chunks(tasks, self.executor.parallelism()))
        raw = [r for chunk in chunk_results for r in chunk]
        return [self._decode(shard, shard_raw, snapshots.get(id(shard)))
                for shard, shard_raw in zip(shards, raw)]

    @staticmethod
    def _make_task(shard: Shard) -> ShardTask:
        queries = tuple(item.query for item in shard.items)
        if shard.kind is ItemKind.TWIG:
            instance = shard.items[0].instance
            return ShardTask(shard.kind, instance.root, queries,
                             digest=instance_fingerprint(instance)[0])
        if shard.kind is ItemKind.RPQ:
            instance = shard.items[0].instance
            return ShardTask(shard.kind, instance, queries,
                             sources=tuple(item.sources
                                           for item in shard.items),
                             digest=instance_fingerprint(instance)[0])
        return ShardTask(shard.kind, None, (shard.items[0].query,),
                         words=tuple(item.word for item in shard.items))

    @staticmethod
    def _check_version(shard: Shard, pinned_version: int) -> None:
        """Refuse to hand out positions that crossed a mutation."""
        if pinned_version != instance_version(shard.items[0].instance):
            raise RuntimeError(
                "document mutated while a process batch was in flight; "
                "the process executor refuses to decode positions across "
                "versions — keep instances fixed for the duration of a "
                "run() or use an in-process executor")

    @staticmethod
    def _decode(shard: Shard, raw: tuple, snapshot) -> tuple:
        if shard.kind is not ItemKind.TWIG:
            return raw  # vertex pairs and booleans are identity-free
        version, nodes = snapshot
        BatchEvaluator._check_version(shard, version)
        return tuple([nodes[i] for i in indices] for indices in raw)

    # ------------------------------------------------------------------
    # Convenience batch shapes
    # ------------------------------------------------------------------
    def evaluate_twig_batch(self, query: TwigQuery,
                            documents: Sequence[XTree]) -> list[list[XNode]]:
        """One hypothesis over many documents, in document order each."""
        return list(self.run(Workload.twig(query, documents)).answers)

    def evaluate_queries(self, queries: Sequence[TwigQuery],
                         document: XTree) -> list[list[XNode]]:
        """Many queries over one document (one shard, one snapshot)."""
        return list(self.run(Workload.twig_queries(queries,
                                                   document)).answers)

    def evaluate_rpq_batch(
        self, query: object, graphs: Sequence[Graph], *,
        sources: Sequence[VertexId] | None = None,
    ) -> list[set[tuple[VertexId, VertexId]]]:
        """One path query over many graphs."""
        return list(self.run(Workload.rpq(query, graphs,
                                          sources=sources)).answers)

    def accepts_batch(self, query: object,
                      words: Sequence[Sequence[str]]) -> list[bool]:
        """One path query probed with many words."""
        return list(self.run(Workload.accepts(query, words)).answers)

    def accepts_stream(
        self, query: object, words: Sequence[Sequence[str]],
    ) -> Iterator[list[tuple[int, bool]]]:
        """Stream :meth:`accepts_batch` flags shard-by-shard.

        Yields ``[(word_position, accepted), ...]`` groups, one per
        acceptance sub-shard (``Workload.ACCEPTS_SHARD_SIZE`` words), as
        each completes — the path session starts filtering a group's
        words while later groups are still being probed.  The union of
        all groups covers every position exactly once and equals
        ``accepts_batch(query, words)``.
        """
        workload = Workload.accepts(query, words)
        for shard_answer in self.run_stream(workload):
            yield list(shard_answer)

    def selects_batch(self, query: TwigQuery | None,
                      candidates: Sequence[tuple[XTree, XNode]],
                      ) -> list[bool]:
        """Does ``query`` select each ``(document, node)`` candidate?

        Evaluates the query once per *distinct* document and classifies
        all of a document's candidates against its answer id-set — the
        batched form of the sessions' per-candidate ``engine.selects``
        loop (``None`` selects nothing, like an absent hypothesis).
        """
        if query is None or not candidates:
            return [False] * len(candidates)
        documents, _ = group_candidates_by_tree(candidates)
        answers = self.evaluate_twig_batch(query, documents)
        return classify_candidates(candidates, documents, answers)

    def selects_stream(
        self, query: TwigQuery | None,
        candidates: Sequence[tuple[XTree, XNode]],
    ) -> Iterator[list[tuple[int, bool]]]:
        """Stream :meth:`selects_batch` flags document-by-document.

        Yields ``[(candidate_position, selected), ...]`` groups — one per
        distinct document, as that document's shard completes — so a
        session can classify (and run follow-up probes on) one document's
        candidates while the rest of the corpus is still evaluating.  The
        union of all groups covers every candidate position exactly once,
        and the flags equal ``selects_batch(query, candidates)``; only
        group arrival order depends on scheduling.
        """
        return stream_select_flags(self.run_stream, query, candidates)

    def selects_any(self, query: TwigQuery | None,
                    candidates: Sequence[tuple[XTree, XNode]]) -> bool:
        """Does ``query`` select *some* candidate?  Short-circuiting.

        The refutation probe of the learners' inner loops: most probed
        hypotheses are violated by an early candidate, so this evaluates
        the query one distinct document at a time (batched classification
        within each document) and stops at the first hit — unlike
        :meth:`selects_batch`, which always materialises every answer.
        """
        if query is None:
            return False
        documents, positions = group_candidates_by_tree(candidates)
        return any(
            any(self.selects_batch(
                query, [candidates[i] for i in positions[id(doc)]]))
            for doc in documents)

    def accepts_any(self, query: object,
                    words: Sequence[Sequence[str]]) -> bool:
        """Does the query language contain *some* word?  Short-circuiting.

        Serves the sessions' implied-negative probes: acceptance is
        memoised per (query, word) on the engine, so the only win left is
        stopping at the first accepted word — batching adds nothing here.
        """
        return any(self.engine.accepts(query, tuple(w)) for w in words)

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any],
            items: Sequence[Any]) -> list[Any]:
        """Order-preserving executor-backed map for arbitrary pure calls.

        Serves session loops whose per-item work is not an engine query
        (e.g. join-predicate informativeness).  Isolated executors fall
        back to inline execution — arbitrary closures don't cross process
        boundaries.
        """
        if not items:
            return []
        if self.executor.isolated:
            return [fn(item) for item in items]

        def run_chunk(chunk: tuple) -> tuple:
            return tuple(fn(item) for item in chunk)

        chunk_results = self.executor.map(
            run_chunk, _chunks(items, self.executor.parallelism()))
        return [out for chunk in chunk_results for out in chunk]

    def map_stream(self, fn: Callable[[Any], Any],
                   items: Sequence[Any],
                   ) -> Iterator[list[tuple[int, Any]]]:
        """Stream :meth:`map` results chunk-by-chunk as chunks complete.

        Yields ``[(item_position, fn(item)), ...]`` groups.  Chunking is
        finer than :meth:`map`'s (4x the executor width, so even a
        serial executor yields multiple groups) and groups arrive in
        completion order; the union covers every position exactly once
        with values equal to ``map(fn, items)``.  Isolated executors run
        chunks inline, lazily — arbitrary closures don't cross process
        boundaries, but consumers still see group-at-a-time progress.
        """
        items = list(items)
        if not items:
            return
        n_chunks = max(1, min(len(items),
                              4 * max(1, self.executor.parallelism())))
        index_chunks = _chunks(range(len(items)), n_chunks)

        def run_chunk(chunk: tuple[int, ...]) -> list[tuple[int, Any]]:
            return [(i, fn(items[i])) for i in chunk]

        if self.executor.isolated:
            for chunk in index_chunks:
                yield run_chunk(chunk)
            return
        for _, group in self._stream_futures(
                lambda i: self.executor.submit(run_chunk, index_chunks[i]),
                len(index_chunks)):
            yield group

    def __repr__(self) -> str:
        return f"<BatchEvaluator executor={self.executor.name}>"
