"""Pluggable shard executors for the batch evaluation service.

The :class:`~repro.serving.evaluator.BatchEvaluator` turns a workload
into shard-chunk tasks and hands them to an executor; the executor only
decides *where* the chunks run.  All three implementations preserve task
order, so batch answers are deterministic regardless of scheduling:

:class:`SerialExecutor`
    Runs chunks inline.  The zero-overhead default — batching still wins
    by amortising per-call work (query canonicalisation, answer
    materialisation) across a shard.

:class:`ThreadExecutor`
    A persistent thread pool sharing the caller's engine, exercising the
    engine's thread-safety.  Shards hit the shared compiled-NFA and
    query-result caches, so repeated batches stay warm across workers.

:class:`ProcessExecutor`
    A persistent process pool for picklable shard tasks
    (:class:`~repro.serving.evaluator.ShardTask`).  Workers evaluate
    against their own process-local engine and ship identity-free answers
    back (pre-order positions, vertex pairs, booleans); the parent maps
    them onto its own objects.  Uses the ``fork`` start method where
    available — ``spawn``/``forkserver`` re-import ``__main__`` in every
    worker, which breaks REPL/stdin-driven callers and re-executes
    unguarded scripts — and **spawns its workers at construction time**:
    forking from a process whose threads (say, an in-flight
    ``ThreadExecutor`` batch) hold an engine or cache lock would snapshot
    the held lock into the child and deadlock it, so the fork happens
    before this executor can possibly be part of such a batch.  Callers
    who start their own threads before constructing executors should
    construct the ``ProcessExecutor`` first, or pass
    ``start_method="forkserver"`` (requires an importable ``__main__``).

Besides the batch-shaped ``map``, every executor exposes ``submit`` — one
task in, a :class:`concurrent.futures.Future` out — which is the seam the
streaming paths build on (:meth:`BatchEvaluator.run_stream
<repro.serving.evaluator.BatchEvaluator.run_stream>` and the
:class:`~repro.serving.async_evaluator.AsyncBatchEvaluator`): shard
answers surface as each future completes instead of waiting on the whole
``map``.  Non-pooled executors (``pooled = False``) run the task inline
and return an already-completed future, so callers that want inline work
off their own thread (the asyncio facade) must offload the ``submit``
call itself.

Executors are context managers; ``close()`` tears the pool down, and a
closed executor refuses further ``map`` calls (construct a new one).
Serial and thread executors construct for free; the process executor pays
its worker fork up front, by design.  Explicit ``max_workers`` must be
positive — a zero or negative width raises :class:`ValueError` instead of
silently falling back to the default.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from collections.abc import Callable, Sequence
from typing import Any


def _resolve_width(max_workers: int | None, default: int) -> int:
    """Validate an explicit pool width; ``None`` means the default."""
    if max_workers is None:
        return default
    if max_workers < 1:
        raise ValueError(
            f"max_workers must be a positive integer, got {max_workers!r}")
    return max_workers


class ShardExecutor:
    """Order-preserving ``map`` (and one-task ``submit``) over shard tasks."""

    #: True when tasks cross a process boundary and must be picklable.
    isolated = False
    #: True when submit() hands the task to background workers; False when
    #: it runs inline on the calling thread (serial and custom executors).
    pooled = False
    name = "abstract"

    def parallelism(self) -> int:
        """How many chunks are worth creating (the scheduling width)."""
        return 1

    def map(self, fn: Callable[[Any], Any],
            tasks: Sequence[Any]) -> list[Any]:
        raise NotImplementedError

    def submit(self, fn: Callable[..., Any],
               *args: Any) -> concurrent.futures.Future:
        """Run one task, exposing its result as a future.

        The default (used by :class:`SerialExecutor` and any custom
        executor that only implements ``map``) runs inline and returns a
        completed future, so streaming degrades gracefully to
        one-shard-at-a-time evaluation.
        """
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 - future carries it
            future.set_exception(exc)
        return future

    def close(self) -> None:
        """Release pooled workers (idempotent)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} width={self.parallelism()}>"


class SerialExecutor(ShardExecutor):
    """Run every chunk inline, in order."""

    name = "serial"

    def map(self, fn: Callable[[Any], Any],
            tasks: Sequence[Any]) -> list[Any]:
        return [fn(t) for t in tasks]


class ThreadExecutor(ShardExecutor):
    """Run chunks on a persistent thread pool sharing one engine."""

    name = "thread"
    pooled = True

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = _resolve_width(
            max_workers, min(8, (os.cpu_count() or 1) * 2))
        # Created in __init__, not on first map(): a shared executor may
        # see its first two map() calls race, and lazy creation there
        # would construct two pools and leak one.  ThreadPoolExecutor
        # itself starts no threads until the first submit, so this is
        # free.
        self._pool: concurrent.futures.ThreadPoolExecutor | None = \
            concurrent.futures.ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-serving")

    def parallelism(self) -> int:
        return self.max_workers

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            raise RuntimeError("executor is closed; construct a new one")
        return self._pool

    def map(self, fn: Callable[[Any], Any],
            tasks: Sequence[Any]) -> list[Any]:
        return list(self._ensure_pool().map(fn, tasks))

    def submit(self, fn: Callable[..., Any],
               *args: Any) -> concurrent.futures.Future:
        return self._ensure_pool().submit(fn, *args)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _noop() -> None:
    """Picklable no-op used to force worker spawn at construction."""


class ProcessExecutor(ShardExecutor):
    """Run picklable chunks on a persistent process pool."""

    isolated = True
    pooled = True
    name = "process"

    def __init__(self, max_workers: int | None = None,
                 start_method: str | None = None) -> None:
        self.max_workers = _resolve_width(
            max_workers, max(2, os.cpu_count() or 1))
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self._pool: concurrent.futures.ProcessPoolExecutor | None = \
            concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context(self.start_method))
        # Fork the workers NOW (ProcessPoolExecutor spawns them on first
        # submit, hence the no-op): at construction time no batch of ours
        # can be mid-flight in another thread, so no engine/cache lock
        # can be snapshotted in a held state into the children.
        self._pool.submit(_noop).result()

    def parallelism(self) -> int:
        return self.max_workers

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            raise RuntimeError("executor is closed; construct a new one")
        return self._pool

    def map(self, fn: Callable[[Any], Any],
            tasks: Sequence[Any]) -> list[Any]:
        return list(self._ensure_pool().map(fn, tasks))

    def submit(self, fn: Callable[..., Any],
               *args: Any) -> concurrent.futures.Future:
        return self._ensure_pool().submit(fn, *args)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
