"""Consistent hashing for the digest-aware serving fleet.

:class:`HashRing` maps content digests to fleet members with the classic
virtual-node construction: every member owns ``replicas`` points on a
2^256 ring (SHA-256 of ``"{member}#{i}"``), and a key belongs to the
first member point at or clockwise after the key's own hash.  Two
properties make this the right router seat for the content-addressed
protocol:

* **Determinism** — placement depends only on member names and the digest
  (SHA-256 end to end, no per-process salt), so every router, test, and
  offline capacity model agrees on who owns which corpus.
* **Minimal movement** — removing a member reassigns *only* that
  member's keys (each to the next point clockwise); everyone else's warm
  indexes stay exactly where they are.  That is what makes failover
  cheap: rehash the ring, and the digest protocol re-ships just the
  moved corpora on ``need_instances``.

The ring is deliberately not thread-safe: it lives on the router's event
loop and is only ever touched from there.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable

#: Virtual nodes per member.  64 keeps the per-member key share within a
#: few percent of uniform for single-digit fleets while membership
#: changes stay O(replicas · log points).
DEFAULT_REPLICAS = 64


def _point(data: str) -> int:
    """A position on the 2^256 ring."""
    return int.from_bytes(hashlib.sha256(data.encode("utf-8")).digest(),
                          "big")


class HashRing:
    """Deterministic digest → member assignment with virtual nodes."""

    def __init__(self, members: Iterable[str] = (), *,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError(
                f"replicas must be a positive integer, got {replicas!r}")
        self.replicas = replicas
        # Sorted, parallel: _points[i] is owned by _owners[i].
        self._points: list[int] = []
        self._owners: list[str] = []
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------
    def add(self, member: str) -> None:
        """Insert a member's virtual nodes.  Idempotent."""
        if member in self:
            return
        for i in range(self.replicas):
            point = _point(f"{member}#{i}")
            at = bisect.bisect_left(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, member)

    def remove(self, member: str) -> None:
        """Drop a member's virtual nodes (a no-op for non-members)."""
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != member]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def node_for(self, key: str) -> str:
        """The member owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise LookupError("hash ring has no members")
        at = bisect.bisect_right(self._points, _point(key))
        if at == len(self._points):  # wrap past the top of the ring
            at = 0
        return self._owners[at]

    # ------------------------------------------------------------------
    def members(self) -> list[str]:
        """The current membership, sorted."""
        return sorted(set(self._owners))

    def __contains__(self, member: object) -> bool:
        return member in self._owners

    def __len__(self) -> int:
        """Number of members (not virtual nodes)."""
        return len(set(self._owners))

    def __repr__(self) -> str:
        return (f"<HashRing {len(self)} members × {self.replicas} "
                f"replicas>")
