"""Workloads: ordered batches of evaluation items, sharded by instance.

A :class:`Workload` is an immutable, ordered collection of
:class:`WorkloadItem` records — each one twig evaluation, RPQ evaluation,
or word-acceptance check.  Items keep their position: every answer in a
:class:`WorkloadResult` is aligned with the item that produced it, so a
batch is observationally a list comprehension over the serial engine
calls, whatever executor ran it.

Sharding follows the engine seam: per-instance indexes are independent,
so items are grouped by data instance (document or graph; acceptance
checks, which are instance-free, group by query).  A shard is the unit of
executor scheduling *and* of snapshot consistency — the batch evaluator
resolves each shard's index once, so one shard never observes two
versions of its instance.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.graphdb.graph import Graph, VertexId
from repro.twig.ast import TwigQuery
from repro.xmltree.tree import XTree

Word = tuple[str, ...]


class ItemKind(enum.Enum):
    """What one workload item asks the engine to do."""

    TWIG = "twig"          # evaluate a twig query over a document
    RPQ = "rpq"            # evaluate a path query over a graph
    ACCEPTS = "accepts"    # does the query language contain a word?


@dataclass(frozen=True, eq=False)
class WorkloadItem:
    """One evaluation: a query against an instance (or a word)."""

    kind: ItemKind
    query: object
    instance: object = None          # XTree | Graph | None (ACCEPTS)
    word: Word | None = None         # ACCEPTS only
    sources: tuple[VertexId, ...] | None = None  # RPQ only

    def shard_key(self) -> tuple[str, int]:
        """Items with equal keys evaluate against one index snapshot."""
        if self.kind is ItemKind.ACCEPTS:
            return ("query", id(self.query))
        return ("instance", id(self.instance))


@dataclass(frozen=True)
class Shard:
    """A shard: the item positions and items sharing one instance."""

    kind: ItemKind
    indices: tuple[int, ...]
    items: tuple[WorkloadItem, ...]


class Workload:
    """An ordered batch of evaluation items (build once, run many)."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[WorkloadItem] = ()) -> None:
        self.items: tuple[WorkloadItem, ...] = tuple(items)

    # ------------------------------------------------------------------
    # Constructors for the common batch shapes
    # ------------------------------------------------------------------
    @classmethod
    def twig(cls, query: TwigQuery,
             documents: Sequence[XTree]) -> "Workload":
        """One hypothesis over many documents (the session hot path)."""
        return cls(WorkloadItem(ItemKind.TWIG, query, doc)
                   for doc in documents)

    @classmethod
    def twig_queries(cls, queries: Sequence[TwigQuery],
                     document: XTree) -> "Workload":
        """One document probed by many queries (one shard, one snapshot)."""
        return cls(WorkloadItem(ItemKind.TWIG, q, document)
                   for q in queries)

    @classmethod
    def rpq(cls, query: object, graphs: Sequence[Graph], *,
            sources: Sequence[VertexId] | None = None) -> "Workload":
        """One path query over many graphs."""
        frozen = tuple(sources) if sources is not None else None
        return cls(WorkloadItem(ItemKind.RPQ, query, g, sources=frozen)
                   for g in graphs)

    @classmethod
    def accepts(cls, query: object,
                words: Sequence[Sequence[str]]) -> "Workload":
        """One path query probed with many words (graph-session scans)."""
        return cls(WorkloadItem(ItemKind.ACCEPTS, query, word=tuple(w))
                   for w in words)

    #: Acceptance checks share no instance snapshot, so their per-query
    #: groups split into sub-shards of this size — a one-query scan over
    #: many words (the path sessions' hot shape) can then spread across
    #: executor workers instead of collapsing into a single shard.
    ACCEPTS_SHARD_SIZE = 64

    # ------------------------------------------------------------------
    def shards(self) -> list[Shard]:
        """Group item positions by instance, in first-occurrence order."""
        groups: dict[tuple[str, int], list[int]] = {}
        for i, item in enumerate(self.items):
            groups.setdefault(item.shard_key(), []).append(i)
        out: list[Shard] = []
        for indices in groups.values():
            kind = self.items[indices[0]].kind
            step = self.ACCEPTS_SHARD_SIZE if kind is ItemKind.ACCEPTS \
                else len(indices)
            for start in range(0, len(indices), step):
                chunk = tuple(indices[start:start + step])
                out.append(Shard(kind, chunk,
                                 tuple(self.items[i] for i in chunk)))
        return out

    # ------------------------------------------------------------------
    def __add__(self, other: "Workload") -> "Workload":
        if not isinstance(other, Workload):
            return NotImplemented
        return Workload(self.items + other.items)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[WorkloadItem]:
        return iter(self.items)

    def __getitem__(self, i: int) -> WorkloadItem:
        return self.items[i]

    def __repr__(self) -> str:
        kinds = {item.kind.value for item in self.items}
        return f"<Workload {len(self.items)} items kinds={sorted(kinds)}>"


@dataclass(frozen=True)
class ShardAnswer:
    """One completed shard's answers, surfaced before the batch finishes.

    The streaming APIs (:meth:`BatchEvaluator.run_stream
    <repro.serving.evaluator.BatchEvaluator.run_stream>`,
    :meth:`AsyncBatchEvaluator.stream
    <repro.serving.async_evaluator.AsyncBatchEvaluator.stream>`, and the
    network endpoint) yield these in *completion* order; ``indices`` are
    the item positions in the originating workload, so any consumer can
    reassemble the deterministic position-aligned
    :class:`WorkloadResult` regardless of arrival order.
    ``answers[k]`` is the answer for item ``indices[k]`` and carries the
    exact same values ``WorkloadResult.answers`` would.
    """

    shard: int
    indices: tuple[int, ...]
    answers: tuple

    def __iter__(self) -> Iterator[tuple[int, object]]:
        """Iterate ``(item_position, answer)`` pairs."""
        return iter(zip(self.indices, self.answers))


@dataclass(frozen=True)
class WorkloadResult:
    """Answers aligned with the workload's item order.

    ``answers[i]`` is exactly what the serial engine call for item ``i``
    would have returned: a list of the instance's *own* node objects in
    document order for twig items (even when a process pool computed the
    answer — workers ship pre-order positions, not copies), a set of
    ``(source, target)`` pairs for RPQ items, a bool for acceptance items.
    """

    workload: Workload
    answers: tuple
    executor: str
    n_shards: int

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self) -> Iterator:
        return iter(self.answers)

    def __getitem__(self, i: int):
        return self.answers[i]

    def __repr__(self) -> str:
        return (f"<WorkloadResult {len(self.answers)} answers "
                f"executor={self.executor} shards={self.n_shards}>")
