"""The serving tier's one timeout configuration surface.

Every timeout a serving component applies is declared here, once, with
its composition rule — previously these were scattered class attributes
(``WorkloadServer.CLOSE_DRAIN_TIMEOUT``, ``FleetRouter.CONNECT_TIMEOUT``,
``EndpointThread.JOIN_TIMEOUT``) plus hardcoded literals (``join(10)``
in the fleet's process teardown), which made it impossible to reason
about how a deadline composes with a drain.  The class attributes still
exist (callers and tests override them per instance), but they are
*assigned from* these constants, so this module is the single place the
numbers live.

The composition rules the constants encode:

* ``CONNECT <= REQUEST``: dialing a peer is part of serving a request,
  so a connect may never outlive the request budget it serves.
* ``CLOSE_DRAIN < JOIN``: a bounded close first cancels and drains
  connection handlers (``CLOSE_DRAIN``), then joins the loop thread
  (``JOIN``) — the join bound must leave room for the drain bound plus
  loop teardown, or a close would report a wedged thread that was
  merely draining.
* ``PROCESS_JOIN`` bounds each stage of fleet-member teardown
  (terminate → join → kill → join); a full teardown is therefore at
  most ``2 * PROCESS_JOIN`` per member.
* Per-request :class:`~repro.serving.resilience.Deadline` budgets cap
  every socket operation they cover at ``min(remaining, REQUEST)`` —
  a deadline tightens the static timeouts, never loosens them.
"""

from __future__ import annotations

#: Bound on dialing one peer (client -> server, router -> member).
CONNECT_TIMEOUT = 10.0

#: Default per-socket-operation budget of a blocking client request
#: (each frame read/write, not the whole request).
REQUEST_TIMEOUT = 30.0

#: Bound on an endpoint's ``aclose()`` drain of cancelled in-flight
#: connection handlers (server and router alike).
CLOSE_DRAIN_TIMEOUT = 5.0

#: Bound on joining an endpoint's event-loop thread at ``close()``.
JOIN_TIMEOUT = 10.0

#: Bound on joining a fleet-member process at each teardown stage.
PROCESS_JOIN_TIMEOUT = 10.0

#: Bound on a freshly forked fleet member reporting its bound port.
MEMBER_STARTUP_TIMEOUT = 30.0


def validate() -> None:
    """Assert the documented composition rules (imported by the tests)."""
    if not CONNECT_TIMEOUT <= REQUEST_TIMEOUT:
        raise ValueError("CONNECT_TIMEOUT must not exceed REQUEST_TIMEOUT")
    if not CLOSE_DRAIN_TIMEOUT < JOIN_TIMEOUT:
        raise ValueError(
            "CLOSE_DRAIN_TIMEOUT must leave JOIN_TIMEOUT headroom")
