"""The TCP front-end: serve workloads over a socket, stream answers back.

The request/response cycle on one connection::

    client                                server
      |-- workload frame ----------------->|  decode, shard, evaluate
      |<---------------- shard frame ------|  (as each shard completes)
      |<---------------- shard frame ------|
      |<---------------- done frame -------|
      |-- workload frame ----------------->|  connections are reusable
      ...

Frames are the length-prefixed JSON of :mod:`repro.serving.wire`; a
request that fails to decode or evaluate produces an ``error`` frame
(with the exception text) instead of killing the connection.  A
``{"type": "stats"}`` request frame is answered with one ``stats``
frame carrying the server engine's live cache/index statistics
(:meth:`repro.engine.core.Engine.stats`) — the observability endpoint a
remote learner polls through :meth:`WorkloadClient.stats`.  Because
shard frames go out the moment the
:class:`~repro.serving.async_evaluator.AsyncBatchEvaluator` stream
yields them, a client sees its first answers while the server is still
evaluating the rest of the batch — the network mirror of the in-process
streaming contract.

:class:`WorkloadServer` is the asyncio endpoint (embed it in an existing
event loop via ``await start()`` / ``await aclose()``, or run it
standalone with :func:`serve`).  :class:`ServerThread` runs the same
endpoint on a background thread with its own loop — the harness the
tests, benchmarks, and blocking callers use.  :class:`WorkloadClient` is
the small blocking client: it keeps the original instances it sent, so
decoded twig answers are *its own* node objects in document order —
answer-identical to a local :class:`~repro.serving.evaluator.BatchEvaluator`
run.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from collections.abc import Iterator

from repro.serving.async_evaluator import AsyncBatchEvaluator
from repro.serving.executors import ShardExecutor
from repro.serving.wire import (
    ProtocolError,
    WorkloadCodec,
    read_frame,
    recv_frame_counted,
    send_frame_blocking,
    write_frame,
)
from repro.serving.workload import ShardAnswer, Workload, WorkloadResult


class WorkloadServer:
    """An ``asyncio.start_server`` endpoint over an async evaluator."""

    def __init__(self, evaluator: AsyncBatchEvaluator | None = None, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.evaluator = evaluator if evaluator is not None \
            else AsyncBatchEvaluator()
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        ``port=0`` (the default) binds an ephemeral port — read the
        actual one from the return value or :attr:`port`.
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as exc:
                    # Framing is gone; report and drop the connection.
                    write_frame(writer, {"type": "error",
                                         "message": str(exc)})
                    await writer.drain()
                    break
                if frame is None:
                    break
                await self._serve_request(frame, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                # Loop teardown cancelled the close handshake after the
                # request cycle already finished; the transport is being
                # dropped with the loop, so completing quietly beats
                # surfacing a cancellation nobody can act on.
                pass

    async def _serve_request(self, frame: object,
                             writer: asyncio.StreamWriter) -> None:
        if isinstance(frame, dict) and frame.get("type") == "stats":
            # Observability probe: no evaluation, one reply frame with
            # the live engine counters (cache hit rates, index builds).
            write_frame(writer, {
                "type": "stats",
                "executor": self.evaluator.executor.name,
                "engine": self.evaluator.engine.stats(),
            })
            await writer.drain()
            return
        codec = WorkloadCodec()
        stream = None
        try:
            workload = codec.decode_workload(frame)
            n_shards = 0
            stream = self.evaluator.stream(workload)
            async for shard_answer in stream:
                write_frame(writer, codec.encode_shard_answer(
                    workload, shard_answer))
                await writer.drain()
                n_shards += 1
            write_frame(writer, {"type": "done", "n_shards": n_shards,
                                 "executor": self.evaluator.executor.name})
        except Exception as exc:  # noqa: BLE001 - surfaced to the peer
            write_frame(writer, {"type": "error", "message": str(exc)})
        finally:
            if stream is not None:
                # A drain() that died on a disconnected peer abandons the
                # iteration mid-stream; closing the generator runs its
                # cancellation path, so in-flight shards of a dead request
                # stop occupying executor slots.
                await stream.aclose()
        await writer.drain()


async def serve(*, host: str = "127.0.0.1", port: int = 0,
                executor: ShardExecutor | None = None) -> None:
    """Run a workload server until cancelled (module-level entry point)."""
    server = WorkloadServer(AsyncBatchEvaluator(executor=executor),
                            host=host, port=port)
    bound_host, bound_port = await server.start()
    print(f"serving workloads on {bound_host}:{bound_port}", flush=True)
    await server.serve_forever()


class ServerThread:
    """A :class:`WorkloadServer` on a dedicated thread and event loop.

    Lets blocking code (tests, benchmarks, a client process) stand up a
    real TCP endpoint without owning an event loop.  Construction blocks
    until the socket is bound; ``close()`` (or the context manager exit)
    stops the loop and joins the thread.
    """

    def __init__(self, evaluator: AsyncBatchEvaluator | None = None, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.server = WorkloadServer(evaluator, host=host, port=port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopped: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serving-net")
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error

    @property
    def address(self) -> tuple[str, int]:
        return self.server.host, self.server.port

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stopped = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:  # noqa: BLE001 - rethrown in ctor
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stopped.wait()
            await self.server.aclose()

        asyncio.run(main())

    def close(self) -> None:
        """Stop the loop and join the thread.  Idempotent."""
        loop, self._loop = self._loop, None
        if loop is not None and self._stopped is not None:
            try:
                loop.call_soon_threadsafe(self._stopped.set)
            except RuntimeError:
                pass  # loop already torn down (e.g. startup failed)
        self._thread.join()

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class WorkloadClient:
    """The small blocking client of the workload protocol.

    One instance is one TCP connection (reusable across any number of
    requests, context-managed).  Answers decode against the *original*
    workload objects the caller passed in — twig answers come back as the
    caller's own node objects in document order, so a remote ``run`` is
    answer-identical to a local ``BatchEvaluator.run`` on the same
    workload.

    The client keeps per-connection observability counters —
    :attr:`requests`, :attr:`bytes_sent`, :attr:`bytes_received` — and
    :meth:`stats` asks the server for its live engine statistics (cache
    hit rates, index builds) over the ``stats`` frame.

    Failure behaviour: a server-reported ``error`` frame leaves the
    connection aligned and reusable, but a *framing* failure (truncated
    frame, unexpected frame kind, socket error) makes the byte stream
    unrecoverable — the client then marks itself broken, further
    requests raise :class:`~repro.serving.wire.ProtocolError`
    immediately instead of hanging on a desynced drain, and
    :meth:`close` stays safe and idempotent throughout.
    """

    def __init__(self, host: str, port: int, *,
                 timeout: float | None = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # Unread response frames of an abandoned stream() — drained before
        # the next request so connection reuse can never desync.
        self._pending_response = False
        # Set on framing-level failures: the connection cannot realign.
        self._broken = False
        #: Requests sent on this connection (workloads and stats probes).
        self.requests = 0
        #: Bytes written to / read from the socket, frame prefixes included.
        self.bytes_sent = 0
        self.bytes_received = 0

    def close(self) -> None:
        """Close the connection.  Idempotent; safe after any error."""
        sock, self._sock = self._sock, None
        self._pending_response = False
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    @property
    def closed(self) -> bool:
        return self._sock is None

    def __enter__(self) -> "WorkloadClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _require_usable(self) -> None:
        if self._sock is None:
            raise RuntimeError("client is closed")
        if self._broken:
            raise ProtocolError(
                "connection is unrecoverable after a protocol error; "
                "open a new WorkloadClient")

    def _send(self, payload: object) -> None:
        try:
            self.bytes_sent += send_frame_blocking(self._sock, payload)
        except OSError:
            self._broken = True
            raise

    def _recv(self) -> object | None:
        """One counted frame; framing/socket failures break the client."""
        try:
            frame, n = recv_frame_counted(self._sock)
        except (ProtocolError, OSError):
            self._broken = True
            raise
        self.bytes_received += n
        return frame

    def _unrecoverable(self, message: str) -> ProtocolError:
        self._broken = True
        return ProtocolError(message)

    # ------------------------------------------------------------------
    def _drain_pending_response(self) -> None:
        """Discard leftover frames of an abandoned earlier ``stream()``.

        Every response ends in a ``done`` or ``error`` frame, so reading
        up to the terminator realigns the connection; the discarded
        answers were for a request the caller walked away from.
        """
        while self._pending_response:
            frame = self._recv()
            if frame is None:
                raise self._unrecoverable("server closed mid-response")
            kind = frame.get("type") if isinstance(frame, dict) else None
            if kind in ("done", "error"):
                self._pending_response = False
            elif kind != "shard":
                raise self._unrecoverable(f"unexpected frame {frame!r}")

    def stream(self, workload: Workload) -> Iterator[ShardAnswer]:
        """Send one workload; yield decoded shard answers as frames land.

        The final ``done`` frame's shard count is cross-checked against
        the frames actually seen; an ``error`` frame raises
        :class:`~repro.serving.wire.ProtocolError` with the server's
        message.  Abandoning the iterator mid-stream is safe: the next
        request on this connection first drains the rest of the old
        response.
        """
        self._require_usable()
        self._drain_pending_response()
        codec = WorkloadCodec()
        self._send(codec.encode_workload(workload))
        self.requests += 1
        self._pending_response = True
        seen = 0
        while True:
            frame = self._recv()
            if frame is None:
                raise self._unrecoverable("server closed mid-response")
            kind = frame.get("type") if isinstance(frame, dict) else None
            if kind == "shard":
                seen += 1
                yield codec.decode_shard_answer(workload, frame)
            elif kind == "done":
                self._pending_response = False
                if frame.get("n_shards") != seen:
                    raise self._unrecoverable(
                        f"server announced {frame.get('n_shards')} shards "
                        f"but sent {seen}")
                self._last_executor = frame.get("executor", "remote")
                return
            elif kind == "error":
                self._pending_response = False
                raise ProtocolError(
                    f"server error: {frame.get('message', 'unknown')}")
            else:
                raise self._unrecoverable(f"unexpected frame {frame!r}")

    def stats(self) -> dict:
        """The server's live engine statistics (one ``stats`` round trip).

        Returns the server's reply — ``{"executor": ..., "engine":
        {...}}`` with the engine dict exactly as
        :meth:`repro.engine.core.Engine.stats` reports it server-side
        (cache hit rates, index build counts).
        """
        self._require_usable()
        self._drain_pending_response()
        self._send({"type": "stats"})
        self.requests += 1
        frame = self._recv()
        if frame is None:
            raise self._unrecoverable("server closed mid-response")
        kind = frame.get("type") if isinstance(frame, dict) else None
        if kind == "stats":
            return {k: v for k, v in frame.items() if k != "type"}
        if kind == "error":
            raise ProtocolError(
                f"server error: {frame.get('message', 'unknown')}")
        raise self._unrecoverable(f"unexpected frame {frame!r}")

    def run(self, workload: Workload) -> WorkloadResult:
        """Remote evaluation with the deterministic position-aligned merge."""
        answers: list = [None] * len(workload)
        n_shards = 0
        for shard_answer in self.stream(workload):
            n_shards += 1
            for position, answer in shard_answer:
                answers[position] = answer
        executor = getattr(self, "_last_executor", "remote")
        return WorkloadResult(workload, tuple(answers),
                              f"remote:{executor}", n_shards)
