"""The TCP front-end: serve workloads over a socket, stream answers back.

The request/response cycle on one connection::

    client                                server
      |-- workload frame ----------------->|  decode, shard, evaluate
      |<---------------- shard frame ------|  (as each shard completes)
      |<---------------- shard frame ------|
      |<---------------- done frame -------|
      |-- workload frame (instance refs) ->|  content-addressed round
      |<-------- need_instances frame -----|  (only if a digest is gone)
      |-- put_instances frame ------------->|
      |<---------------- shard frame ------|
      ...

Frames are the length-prefixed JSON of :mod:`repro.serving.wire`; a
request that fails to decode or evaluate produces an ``error`` frame
(with the exception text) instead of killing the connection.  A
``{"type": "stats"}`` request frame is answered with one ``stats``
frame carrying the server engine's live cache/index statistics
(:meth:`repro.engine.core.Engine.stats`), the content-addressed
instance-cache counters, and the shard-admission state — the
observability endpoint a remote learner polls through
:meth:`WorkloadClient.stats` (and, when ``stats_port`` is set, a plain
``GET /stats`` HTTP endpoint serves the same JSON to scrapers).  Because
shard frames go out the moment the
:class:`~repro.serving.async_evaluator.AsyncBatchEvaluator` stream
yields them, a client sees its first answers while the server is still
evaluating the rest of the batch — the network mirror of the in-process
streaming contract.

Instances are content-addressed across the whole tier
(:class:`~repro.serving.instance_cache.InstanceStore`): every decoded
document/graph is stored by structural digest and shared across
connections, so a session ships its corpus **once** — later rounds send
``ref`` records, the store resolves them to the *same* decoded objects,
and the engine serves their warm indexes instead of rebuilding per
round.  Eviction is negotiated, never fatal: a workload referencing an
evicted digest gets one ``need_instances`` frame, the client re-ships,
and the request proceeds.

:class:`WorkloadServer` is the asyncio endpoint (embed it in an existing
event loop via ``await start()`` / ``await aclose()``, or run it
standalone with :func:`serve`).  :class:`ServerThread` runs the same
endpoint on a background thread with its own loop — the harness the
tests, benchmarks, and blocking callers use.  :class:`WorkloadClient` is
the small blocking client: it keeps the original instances it sent, so
decoded twig answers are *its own* node objects in document order —
answer-identical to a local :class:`~repro.serving.evaluator.BatchEvaluator`
run.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from collections import OrderedDict
from collections.abc import Iterator, Sequence

from repro.errors import DeadlineExceeded
from repro.serving import timeouts
from repro.serving.async_evaluator import AsyncBatchEvaluator
from repro.serving.executors import ShardExecutor
from repro.serving.instance_cache import InstanceStore
from repro.serving.resilience import Deadline, RetryPolicy, RetryState
from repro.serving.wire import (
    NeedInstances,
    ProtocolError,
    RemoteError,
    TransportError,
    WorkloadCodec,
    apply_delta_copy,
    apply_delta_to_instance,
    delta_record_for,
    instance_digest,
    instance_fingerprint,
    read_frame,
    record_digest,
    recv_frame_counted,
    send_frame_blocking,
    write_frame,
)
from repro.serving.workload import ShardAnswer, Workload, WorkloadResult


class ShardGate:
    """FIFO admission control: at most ``limit`` shards in flight.

    One gate per server, shared by every connection: a greedy client's
    over-limit shard submissions *queue* on the semaphore (asyncio wakes
    waiters first-come-first-served) instead of erroring or starving the
    executor; interleaved with other connections' waiters, that is the
    server's fairness floor.  ``in_flight`` is observability only.

    ``per_owner`` layers a fair-scheduling quota on top: an *owner* (one
    connection, in the server's use) may hold at most that many slots —
    counting both in-flight shards and submissions queued at the global
    semaphore — so a greedy session cannot flood the FIFO queue and
    monopolise the executor while other connections starve.  Owners are
    opaque hashable tokens; :meth:`scoped` binds one into the zero-arg
    ``acquire``/``release`` surface the async evaluator drives.
    """

    def __init__(self, limit: int, *, per_owner: int | None = None) -> None:
        if limit < 1:
            raise ValueError(
                f"max_inflight_shards must be positive, got {limit!r}")
        if per_owner is not None and per_owner < 1:
            raise ValueError(
                f"per-owner quota must be positive, got {per_owner!r}")
        self.limit = limit
        self.per_owner = per_owner
        # lock-free: mutated only from acquire()/release() on the server's
        # single event-loop thread; cross-thread readers (stats) tolerate
        # a stale read of one int — it is observability, not accounting.
        self.in_flight = 0
        #: Shard admissions refused because the request's deadline had
        #: already passed (at entry, or after queueing for a slot).
        # lock-free: mutated only from acquire() on the event-loop thread.
        self.deadline_sheds = 0
        self._semaphore = asyncio.Semaphore(limit)
        # lock-free: owner bookkeeping is touched only from acquire()/
        # release() on the single event-loop thread.
        self._owner_held: dict[object, int] = {}
        self._owner_turn: dict[object, asyncio.Event] = {}

    async def acquire(self, owner: object = None,
                      deadline: "Deadline | None" = None) -> None:
        if deadline is not None and deadline.expired:
            # Nobody is waiting for this shard anymore: shed it before
            # it queues (let alone occupies) an executor slot.
            self.deadline_sheds += 1
            raise DeadlineExceeded(
                "request deadline expired before shard admission")
        if self.per_owner is not None and owner is not None:
            while self._owner_held.get(owner, 0) >= self.per_owner:
                event = self._owner_turn.get(owner)
                if event is None:
                    event = self._owner_turn[owner] = asyncio.Event()
                await event.wait()
            self._owner_held[owner] = self._owner_held.get(owner, 0) + 1
        try:
            await self._semaphore.acquire()
        except BaseException:
            # Cancelled while queued: give the owner slot back and wake
            # any same-owner waiter so the quota cannot wedge.
            if self.per_owner is not None and owner is not None:
                self._drop_owner_slot(owner)
            raise
        if deadline is not None and deadline.expired:
            # The deadline ran out while this submission was queued for
            # a slot: give the slot straight back and shed the shard.
            self._semaphore.release()
            if self.per_owner is not None and owner is not None:
                self._drop_owner_slot(owner)
            self.deadline_sheds += 1
            raise DeadlineExceeded(
                "request deadline expired while queued for shard admission")
        self.in_flight += 1

    def release(self, owner: object = None) -> None:
        self.in_flight -= 1
        self._semaphore.release()
        if self.per_owner is not None and owner is not None:
            self._drop_owner_slot(owner)

    def _drop_owner_slot(self, owner: object) -> None:
        held = self._owner_held.get(owner, 0) - 1
        if held <= 0:
            self._owner_held.pop(owner, None)
        else:
            self._owner_held[owner] = held
        event = self._owner_turn.pop(owner, None)
        if event is not None:
            event.set()

    def scoped(self, owner: object) -> "_ScopedGate":
        """This gate with ``owner`` bound — the per-connection handle."""
        return _ScopedGate(self, owner)

    def owners(self) -> int:
        """How many owners currently hold at least one slot."""
        return len(self._owner_held)


class _ScopedGate:
    """A :class:`ShardGate` with an owner token pre-bound.

    Presents the zero-argument ``acquire``/``release`` surface
    :meth:`AsyncBatchEvaluator.stream
    <repro.serving.async_evaluator.AsyncBatchEvaluator.stream>` expects,
    while every slot it takes is accounted to its owner for the
    per-connection fairness quota.  :meth:`with_deadline` additionally
    binds one request's :class:`~repro.serving.resilience.Deadline`, so
    admission control sheds queued shards nobody is waiting for anymore
    (``acquire`` raises :class:`~repro.errors.DeadlineExceeded`, which
    the evaluator stream surfaces and the server answers with a coded
    ``error`` frame).
    """

    __slots__ = ("_gate", "_owner", "_deadline")

    def __init__(self, gate: ShardGate, owner: object,
                 deadline: "Deadline | None" = None) -> None:
        self._gate = gate
        self._owner = owner
        self._deadline = deadline

    def with_deadline(self, deadline: "Deadline | None") -> "_ScopedGate":
        """This handle with a per-request deadline bound (same owner)."""
        return _ScopedGate(self._gate, self._owner, deadline)

    async def acquire(self) -> None:
        await self._gate.acquire(self._owner, self._deadline)

    def release(self) -> None:
        self._gate.release(self._owner)


class WorkloadServer:
    """An ``asyncio.start_server`` endpoint over an async evaluator.

    ``instance_store`` is the content-addressed instance cache (a
    default-sized :class:`~repro.serving.instance_cache.InstanceStore`
    when omitted; pass one to share a corpus across servers or to bound
    its budget).  ``max_inflight_shards`` bounds concurrently evaluating
    shards across *all* connections (queued FIFO over the limit, never
    an error); ``max_inflight_per_connection`` additionally caps how
    many of those slots one connection may hold or queue for, so a
    greedy session shares the executor fairly with its neighbours.
    ``stats_port`` additionally serves ``GET /stats`` over plain HTTP on
    that port — the same JSON as the wire ``stats`` frame, scrapeable
    with stdlib tooling alone.

    A ``drain`` frame stops the listener (new connections are refused;
    established ones keep being served) so a fleet member can be
    restarted without failing sessions; ``undrain`` re-binds it, and
    ``ping`` answers ``ok`` — the health probe the fleet router uses.
    """

    def __init__(self, evaluator: AsyncBatchEvaluator | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 instance_store: InstanceStore | None = None,
                 max_inflight_shards: int | None = None,
                 max_inflight_per_connection: int | None = None,
                 stats_port: int | None = None) -> None:
        self.evaluator = evaluator if evaluator is not None \
            else AsyncBatchEvaluator()
        self.host = host
        self.port = port
        self.instance_store = instance_store if instance_store is not None \
            else InstanceStore()
        if max_inflight_per_connection is not None \
                and max_inflight_shards is None:
            raise ValueError("max_inflight_per_connection requires "
                             "max_inflight_shards")
        self._gate = None if max_inflight_shards is None \
            else ShardGate(max_inflight_shards,
                           per_owner=max_inflight_per_connection)
        self.stats_port = stats_port
        #: True once a ``drain`` frame stopped the listener.
        self.draining = False
        self._server: asyncio.base_events.Server | None = None
        self._stats_server: asyncio.base_events.Server | None = None
        # lock-free: connection-handler tasks register/unregister on the
        # event-loop thread only; aclose() runs there too.
        self._conn_tasks: set[asyncio.Task] = set()
        self._next_conn_token = 0  # lock-free: event-loop thread only
        # Digests in-flight requests currently evaluate against; the
        # in-place delta applier patches a *copy* while anyone still
        # holds the base.  lock-free: event-loop thread only (appliers
        # run during decode, which happens on the loop).
        self._active_refs: dict[str, int] = {}
        # Speculative-prefetch ledger: frame-level keys of prefetch
        # items not yet claimed by a normal request (True values; FIFO
        # pruned above the cap, pruned entries count as wasted).
        # lock-free: event-loop thread only.
        self._prefetch_pending: "OrderedDict[str, bool]" = OrderedDict()
        # lock-free: event-loop thread only
        self._prefetch = {"submitted": 0, "hits": 0, "wasted": 0}
        # Workload requests shed whole because their ``deadline_ms`` had
        # already expired on arrival (per-shard sheds are counted by the
        # gate).  lock-free: event-loop thread only.
        self._deadline_sheds = 0

    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        ``port=0`` (the default) binds an ephemeral port — read the
        actual one from the return value or :attr:`port`.  When
        ``stats_port`` was given, the HTTP stats endpoint binds too
        (``stats_port=0`` for an ephemeral one, re-read from
        :attr:`stats_port`).
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        if self.stats_port is not None:
            try:
                self._stats_server = await asyncio.start_server(
                    self._handle_stats_http, self.host, self.stats_port)
            except BaseException:
                # A failed stats bind must not leak the already-bound
                # workload listener (or leave start() unretryable).
                self._server.close()
                await self._server.wait_closed()
                self._server = None
                raise
            self.stats_port = \
                self._stats_server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    #: How long :meth:`aclose` waits for cancelled connection handlers
    #: to finish before giving up on them (they are daemons of the loop
    #: being torn down anyway — a bounded drain, never an unbounded one).
    #: The number lives in :mod:`repro.serving.timeouts`; this attribute
    #: exists so callers and tests can override it per instance.
    CLOSE_DRAIN_TIMEOUT = timeouts.CLOSE_DRAIN_TIMEOUT

    async def aclose(self, *, drain_timeout: float | None = None) -> None:
        """Stop listening and tear down in-flight connection handlers.

        The listener closes first, then every live connection-handler
        task is *cancelled* and awaited for at most ``drain_timeout``
        seconds (:attr:`CLOSE_DRAIN_TIMEOUT` by default) — one stuck
        client blocked mid-read can therefore never hang the close (on
        3.12+ ``Server.wait_closed`` waits on handlers, which used to
        wedge forever behind exactly such a client).
        """
        if drain_timeout is None:
            drain_timeout = self.CLOSE_DRAIN_TIMEOUT
        if self._stats_server is not None:
            self._stats_server.close()
            await self._stats_server.wait_closed()
            self._stats_server = None
        if self._server is not None:
            self._server.close()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.wait(set(self._conn_tasks),
                                   timeout=drain_timeout)
            try:
                await asyncio.wait_for(self._server.wait_closed(),
                                       drain_timeout)
            except asyncio.TimeoutError:
                # A handler survived cancellation within the budget; the
                # listener socket is closed regardless, and the loop is
                # about to be torn down with whatever is left.
                pass
            self._server = None

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        # One fairness-quota owner token per connection: all of this
        # connection's shard submissions are accounted together.
        self._next_conn_token += 1
        gate = None if self._gate is None \
            else self._gate.scoped(self._next_conn_token)
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as exc:
                    # Framing is gone; report and drop the connection.
                    write_frame(writer, {"type": "error",
                                         "message": str(exc)})
                    await writer.drain()
                    break
                if frame is None:
                    break
                await self._serve_request(frame, reader, writer, gate)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Only aclose() cancels handler tasks (shutdown path).  Exit
            # cleanly instead of re-raising: a task left in "cancelled"
            # state trips the stream protocol's done-callback into
            # logging an error nobody can act on.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                # Loop teardown cancelled the close handshake after the
                # request cycle already finished; the transport is being
                # dropped with the loop, so completing quietly beats
                # surfacing a cancellation nobody can act on.
                pass

    def _delta_applier_for(self, codec: WorkloadCodec):
        """The server's delta applier, bound to one request's codec.

        When nothing else references the base — no in-flight request,
        and not even an earlier record of this same request — the diff
        is replayed *onto the stored instance*: its tracked mutators
        keep the edit log flowing, so the engine patches the warm
        columnar index instead of rebuilding, and the store entry is
        rekeyed from the old digest to the new one.  A contended base
        is patched as a structural copy instead (the default applier),
        leaving concurrent evaluations their consistent snapshot.
        """

        def apply(base: object, delta: dict) -> object:
            from_digest = delta["from"]
            if self._active_refs.get(from_digest, 0) > 0 \
                    or from_digest in codec.resolved_digests():
                return apply_delta_copy(base, delta)
            try:
                apply_delta_to_instance(base, delta)
                digest = instance_digest(base)
                if digest != delta["to"]:
                    raise ProtocolError(
                        f"delta digest mismatch: patched instance hashes "
                        f"to {digest!r}, delta promised {delta['to']!r}")
                return base
            finally:
                # Patched or torn, the stored object no longer matches
                # its old digest; later refs to it must renegotiate.
                self.instance_store.pop(from_digest)

        return apply

    @staticmethod
    def _prefetch_keys(frame: dict) -> list[str]:
        """Stable per-item keys of a workload frame, straight from the
        encoded form (no decode needed): the query record, the
        instance's content digest (full/ref ``digest`` or delta ``to``),
        and the item's own parameters."""
        queries = frame.get("queries") or []
        instances = frame.get("instances") or []
        keys: list[str] = []
        for item in frame.get("items") or []:
            if not isinstance(item, dict):
                continue
            qi = item.get("query")
            query = queries[qi] \
                if isinstance(qi, int) and 0 <= qi < len(queries) else None
            ii = item.get("instance")
            digest = None
            if isinstance(ii, int) and 0 <= ii < len(instances) \
                    and isinstance(instances[ii], dict):
                digest = instances[ii].get("digest") \
                    or instances[ii].get("to")
            keys.append(json.dumps(
                {"q": query, "d": digest, "k": item.get("kind"),
                 "s": item.get("sources"), "w": item.get("word")},
                sort_keys=True, separators=(",", ":")))
        return keys

    #: Unclaimed prefetch keys kept before the oldest are pruned (and
    #: counted as wasted).
    PREFETCH_PENDING_CAP = 4096

    def _note_prefetch(self, frame: dict, *, is_prefetch: bool) -> None:
        """Update the speculative-prefetch ledger for one workload frame."""
        keys = self._prefetch_keys(frame)
        if is_prefetch:
            self._prefetch["submitted"] += len(keys)
            for key in keys:
                self._prefetch_pending[key] = True
                self._prefetch_pending.move_to_end(key)
            while len(self._prefetch_pending) > self.PREFETCH_PENDING_CAP:
                self._prefetch_pending.popitem(last=False)
                self._prefetch["wasted"] += 1
        else:
            for key in keys:
                if self._prefetch_pending.pop(key, None) is not None:
                    self._prefetch["hits"] += 1

    def _stats_payload(self) -> dict:
        """Live server state — one dict, JSON-encodable end to end."""
        out = {
            "executor": self.evaluator.executor.name,
            "engine": self.evaluator.engine.stats(),
            "instance_cache": self.instance_store.stats(),
            "prefetch": {**self._prefetch,
                         "pending": len(self._prefetch_pending)},
            "draining": self.draining,
            "admission": {
                "max_inflight_shards":
                    None if self._gate is None else self._gate.limit,
                "max_inflight_per_connection":
                    None if self._gate is None else self._gate.per_owner,
                "in_flight":
                    0 if self._gate is None else self._gate.in_flight,
                "owners": 0 if self._gate is None else self._gate.owners(),
            },
            "resilience": {
                "deadline_sheds": self._deadline_sheds + (
                    0 if self._gate is None else self._gate.deadline_sheds),
            },
        }
        return out

    async def _decode_negotiated(self, frame: dict, codec: WorkloadCodec,
                                 reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter,
                                 ) -> Workload | None:
        """Decode a workload frame, negotiating missing instances.

        A decode that trips on unknown digests answers with one
        ``need_instances`` frame and expects exactly one ``put_instances``
        reply; a second miss after the put is the client's bug and
        surfaces as a server error frame (``None`` return means the
        connection is gone and the request cycle is over).
        """
        try:
            return codec.decode_workload(frame, store=self.instance_store)
        except NeedInstances as exc:
            write_frame(writer, {"type": "need_instances",
                                 "digests": exc.digests})
            await writer.drain()
            reply = await read_frame(reader)
            if reply is None:
                return None
            if not (isinstance(reply, dict)
                    and reply.get("type") == "put_instances"):
                raise ProtocolError(
                    f"expected a put_instances frame after need_instances, "
                    f"got {reply!r}")
            codec.decode_put_instances(reply, self.instance_store)
            # One negotiation round only: missing again means the client
            # could not (or refused to) supply the digests it referenced.
            return codec.decode_workload(frame, store=self.instance_store)

    async def _serve_request(self, frame: object,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter,
                             gate: "_ScopedGate | ShardGate | None" = None,
                             ) -> None:
        kind = frame.get("type") if isinstance(frame, dict) else None
        if kind == "stats":
            # Observability probe: no evaluation, one reply frame with
            # the live engine counters (cache hit rates, index builds),
            # instance-cache counters, and admission state.
            write_frame(writer, {"type": "stats", **self._stats_payload()})
            await writer.drain()
            return
        if kind == "ping":
            # Health probe: alive and reading frames — that is the answer.
            write_frame(writer, {"type": "ok", "draining": self.draining})
            await writer.drain()
            return
        if kind in ("drain", "undrain") and frame.get("member") is not None:
            # Member-targeted drains are a router concept; a single
            # server has no ring to take members out of.
            write_frame(writer, {
                "type": "error",
                "message": "this endpoint is a single WorkloadServer, "
                           "not a fleet router — no member "
                           f"{frame.get('member')!r} to {kind}"})
            await writer.drain()
            return
        if kind == "drain":
            # Graceful stop: close the listener (new connections refused)
            # while every established connection keeps being served, so a
            # fleet member can be restarted without failing sessions.
            if self._server is not None and not self.draining:
                self._server.close()
                self.draining = True
            write_frame(writer, {"type": "ok", "draining": self.draining})
            await writer.drain()
            return
        if kind == "undrain":
            # Resume accepting: re-bind the listener on the same address.
            if self.draining:
                self._server = await asyncio.start_server(
                    self._handle_connection, self.host, self.port)
                self.draining = False
            write_frame(writer, {"type": "ok", "draining": self.draining})
            await writer.drain()
            return
        if kind == "ring":
            write_frame(writer, {
                "type": "error",
                "message": "this endpoint is a single WorkloadServer, "
                           "not a fleet router — no ring to report"})
            await writer.drain()
            return
        if kind == "put_instances":
            # Proactive corpus warm-up: store the records, acknowledge.
            try:
                stored = WorkloadCodec().decode_put_instances(
                    frame, self.instance_store)
                write_frame(writer, {"type": "ok", "stored": len(stored)})
            except Exception as exc:  # noqa: BLE001 - surfaced to the peer
                write_frame(writer, {"type": "error", "message": str(exc)})
            await writer.drain()
            return
        if kind == "delta":
            # Proactive delta push: patch stored instances forward to
            # their post-mutation digests.  Unresolvable diffs (base
            # evicted, digest mismatch) come back in ``missing`` so the
            # pusher re-ships those in full — degradation, not failure.
            try:
                codec = WorkloadCodec()
                codec.set_delta_applier(self._delta_applier_for(codec))
                applied, missing = codec.decode_delta_frame(
                    frame, self.instance_store)
                write_frame(writer, {"type": "ok", "applied": applied,
                                     "missing": missing})
            except Exception as exc:  # noqa: BLE001 - surfaced to the peer
                write_frame(writer, {"type": "error", "message": str(exc)})
            await writer.drain()
            return
        if kind is not None:
            # Tagged frames are exhaustively handled above; an unknown
            # tag must not be mistaken for a (type-less) workload frame.
            write_frame(writer, {"type": "error",
                                 "message": f"unsupported request frame "
                                            f"type {kind!r}"})
            await writer.drain()
            return
        # Positions end to end: the evaluator streams pre-order position
        # tuples and the codec copies them straight into shard frames —
        # the server never materialises answer nodes, never enumerates a
        # pre-order snapshot, and never builds an id -> position map per
        # request.  Nodes exist only on the client side of the socket.
        deadline = None
        if isinstance(frame, dict):
            budget_ms = frame.get("deadline_ms")
            if isinstance(budget_ms, (int, float)) and budget_ms >= 0:
                deadline = Deadline.after(budget_ms / 1000.0)
        if deadline is not None and deadline.expired:
            # The budget was spent in transit/queueing: shed the whole
            # request before decoding a single instance.
            self._deadline_sheds += 1
            write_frame(writer, {
                "type": "error", "code": "deadline_exceeded",
                "message": "deadline expired before evaluation began; "
                           "request shed"})
            await writer.drain()
            return
        codec = WorkloadCodec()
        codec.set_delta_applier(self._delta_applier_for(codec))
        if isinstance(frame, dict):
            self._note_prefetch(frame,
                                is_prefetch=bool(frame.get("prefetch")))
        if gate is not None and deadline is not None:
            gate = gate.with_deadline(deadline)
        stream = None
        held: frozenset[str] = frozenset()
        try:
            workload = await self._decode_negotiated(
                frame, codec, reader, writer)
            if workload is None:
                return
            # Pin this request's digests in the active-ref ledger: a
            # delta arriving on another connection then patches a copy
            # instead of mutating an instance mid-evaluation here.
            held = codec.resolved_digests()
            for digest in held:
                self._active_refs[digest] = \
                    self._active_refs.get(digest, 0) + 1
            n_shards = 0
            stream = self.evaluator.stream(workload, gate=gate,
                                           positions_native=True)
            async for shard_answer in stream:
                write_frame(writer, codec.encode_shard_answer(
                    workload, shard_answer, positions_native=True))
                await writer.drain()
                n_shards += 1
            write_frame(writer, {"type": "done", "n_shards": n_shards,
                                 "executor": self.evaluator.executor.name})
        except DeadlineExceeded as exc:
            # Coded so the client surfaces DeadlineExceeded (and never
            # retries it — the time a retry needs is what ran out).
            write_frame(writer, {"type": "error",
                                 "code": "deadline_exceeded",
                                 "message": str(exc)})
        except Exception as exc:  # noqa: BLE001 - surfaced to the peer
            write_frame(writer, {"type": "error", "message": str(exc)})
        finally:
            for digest in held:
                remaining = self._active_refs.get(digest, 0) - 1
                if remaining <= 0:
                    self._active_refs.pop(digest, None)
                else:
                    self._active_refs[digest] = remaining
            if stream is not None:
                # A drain() that died on a disconnected peer abandons the
                # iteration mid-stream; closing the generator runs its
                # cancellation path, so in-flight shards of a dead request
                # stop occupying executor slots.
                await stream.aclose()
        await writer.drain()

    # ------------------------------------------------------------------
    #: Whole-request read budget and header cap for the stats endpoint:
    #: a scraper is one short GET, so anything slow or bulky is a client
    #: bug (or a port scanner) and gets a 400, not a pinned coroutine.
    STATS_HTTP_TIMEOUT = 10.0
    STATS_HTTP_MAX_HEADERS = 256

    async def _handle_stats_http(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """One-shot ``GET /stats`` over plain HTTP/1.0 (stdlib only)."""

        async def read_request() -> bytes:
            request_line = await reader.readline()
            for _ in range(self.STATS_HTTP_MAX_HEADERS):
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            return request_line

        try:
            try:
                request_line = await asyncio.wait_for(
                    read_request(), self.STATS_HTTP_TIMEOUT)
            except (asyncio.TimeoutError, ValueError):
                # Stalled mid-request, or a line past the stream's
                # buffer limit (LimitOverrunError is a ValueError).
                status, body = "400 Bad Request", b'{"error":"bad request"}'
            else:
                parts = request_line.split()
                path = parts[1].decode("latin-1", "replace") \
                    if len(parts) >= 2 else ""
                if len(parts) >= 2 and parts[0] == b"GET" \
                        and path.partition("?")[0] == "/stats":
                    status, body = "200 OK", json.dumps(
                        self._stats_payload()).encode("utf-8")
                else:
                    status, body = "404 Not Found", b'{"error":"not found"}'
            writer.write(
                (f"HTTP/1.0 {status}\r\n"
                 f"Content-Type: application/json\r\n"
                 f"Content-Length: {len(body)}\r\n"
                 f"Connection: close\r\n\r\n").encode("ascii") + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass


async def serve(*, host: str = "127.0.0.1", port: int = 0,
                executor: ShardExecutor | None = None,
                **server_options) -> None:
    """Run a workload server until cancelled (module-level entry point).

    Extra keyword options (``instance_store``, ``max_inflight_shards``,
    ``stats_port``) pass through to :class:`WorkloadServer`.
    """
    server = WorkloadServer(AsyncBatchEvaluator(executor=executor),
                            host=host, port=port, **server_options)
    bound_host, bound_port = await server.start()
    print(f"serving workloads on {bound_host}:{bound_port}", flush=True)
    await server.serve_forever()


class EndpointThread:
    """Any async endpoint (``start()``/``aclose()``) on its own thread.

    Lets blocking code (tests, benchmarks, a client process) stand up a
    real TCP endpoint without owning an event loop.  Construction blocks
    until the socket is bound; ``close()`` (or the context manager exit)
    stops the loop and joins the thread with a **bounded** join — a
    close that cannot complete within its timeout raises instead of
    hanging the caller forever behind one stuck connection (the
    endpoint's own ``aclose`` cancels its handlers, so in practice the
    join returns promptly).  :class:`ServerThread` runs a
    :class:`WorkloadServer`; :class:`~repro.serving.fleet.RouterThread`
    runs a :class:`~repro.serving.fleet.FleetRouter`.
    """

    #: Default bound on the close() join (the number lives in
    #: :mod:`repro.serving.timeouts`; override per instance as needed).
    JOIN_TIMEOUT = timeouts.JOIN_TIMEOUT

    def __init__(self, endpoint, *, thread_name: str = "repro-serving-net",
                 ) -> None:
        self._endpoint = endpoint
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopped: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=thread_name)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error

    @property
    def address(self) -> tuple[str, int]:
        return self._endpoint.host, self._endpoint.port

    def call_soon(self, fn, *args) -> None:
        """Schedule ``fn`` on the endpoint's loop (thread-safe)."""
        loop = self._loop
        if loop is None:
            raise RuntimeError("endpoint thread is not running")
        loop.call_soon_threadsafe(fn, *args)

    def run_coroutine(self, coro):
        """Run a coroutine on the endpoint's loop; returns its result."""
        loop = self._loop
        if loop is None:
            raise RuntimeError("endpoint thread is not running")
        return asyncio.run_coroutine_threadsafe(coro, loop).result()

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stopped = asyncio.Event()
            try:
                await self._endpoint.start()
            except BaseException as exc:  # noqa: BLE001 - rethrown in ctor
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stopped.wait()
            await self._endpoint.aclose()

        asyncio.run(main())

    def close(self, *, timeout: float | None = None) -> None:
        """Stop the loop and join the thread (bounded).  Idempotent.

        Raises :class:`RuntimeError` if the endpoint thread is still
        alive after ``timeout`` seconds (:attr:`JOIN_TIMEOUT` default) —
        a close that silently hangs is strictly worse than one that
        fails loudly with the thread name in hand.
        """
        if timeout is None:
            timeout = self.JOIN_TIMEOUT
        loop, self._loop = self._loop, None
        if loop is not None and self._stopped is not None:
            try:
                loop.call_soon_threadsafe(self._stopped.set)
            except RuntimeError:
                pass  # loop already torn down (e.g. startup failed)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError(
                f"endpoint thread {self._thread.name!r} did not exit "
                f"within {timeout}s of close()")

    def __enter__(self) -> "EndpointThread":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ServerThread(EndpointThread):
    """A :class:`WorkloadServer` on a dedicated thread and event loop.

    Construction blocks until the socket is bound; ``close()`` (or the
    context manager exit) stops the loop and joins the thread.  Extra
    keyword options (``instance_store``, ``max_inflight_shards``,
    ``max_inflight_per_connection``, ``stats_port``) pass through to the
    underlying :class:`WorkloadServer`.
    """

    def __init__(self, evaluator: AsyncBatchEvaluator | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 **server_options) -> None:
        self.server = WorkloadServer(evaluator, host=host, port=port,
                                     **server_options)
        super().__init__(self.server)

    @property
    def stats_address(self) -> tuple[str, int] | None:
        """The HTTP stats endpoint's ``(host, port)``, if one is bound."""
        if self.server.stats_port is None:
            return None
        return self.server.host, self.server.stats_port

    def __enter__(self) -> "ServerThread":
        return self


class WorkloadClient:
    """The small blocking client of the workload protocol.

    One instance is one TCP connection (reusable across any number of
    requests, context-managed).  Answers decode against the *original*
    workload objects the caller passed in — twig answers come back as the
    caller's own node objects in document order, so a remote ``run`` is
    answer-identical to a local ``BatchEvaluator.run`` on the same
    workload.

    The client keeps per-connection observability counters —
    :attr:`requests`, :attr:`bytes_sent`, :attr:`bytes_received` — and
    :meth:`stats` asks the server for its live engine statistics (cache
    hit rates, index builds) over the ``stats`` frame.

    Failure behaviour: a server-reported ``error`` frame leaves the
    connection aligned and reusable, but a *framing* failure (truncated
    frame, unexpected frame kind, socket error) makes the byte stream
    unrecoverable — the client then marks itself broken, further
    requests raise :class:`~repro.serving.wire.ProtocolError`
    immediately instead of hanging on a desynced drain, and
    :meth:`close` stays safe and idempotent throughout.

    Passing ``retry=RetryPolicy(...)`` makes the client *self-healing*
    instead: a transport failure (connection killed, truncated frame,
    socket timeout) is answered by a bounded-backoff **reconnect**, and
    an interrupted ``stream()`` transparently **replays** its workload
    on the fresh connection — refs-only, with the ``need_instances``
    negotiation re-shipping the corpus if the server restarted empty —
    while already-delivered item positions are filtered from the
    replayed answers, so the caller still sees every position exactly
    once.  ``on_reconnect`` (if given) fires after each successful
    re-dial, before any replay — the hook a pooled backend uses to
    invalidate its digest bookkeeping.  Non-transport failures (server
    ``error`` frames, protocol desyncs, expired deadlines) are never
    retried.  The counters: :attr:`retries` (recovery attempts after a
    backoff), :attr:`reconnects` (successful re-dials), :attr:`replays`
    (workloads re-sent mid-stream).

    A per-request ``deadline`` (:class:`~repro.serving.resilience.Deadline`)
    caps every blocking socket operation at ``min(remaining, timeout)``,
    travels to the server as the workload frame's ``deadline_ms`` (so
    admission control sheds shards nobody is waiting for), and bounds
    retry backoff — raising :class:`~repro.errors.DeadlineExceeded`
    when the budget runs out.
    """

    def __init__(self, host: str, port: int, *,
                 timeout: float | None = timeouts.REQUEST_TIMEOUT,
                 retry: "RetryPolicy | None" = None,
                 on_reconnect=None) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = retry
        self._on_reconnect = on_reconnect
        #: Recovery attempts made after a backoff (dial or replay).
        self.retries = 0
        #: Successful re-dials after a broken connection.
        self.reconnects = 0
        #: Workloads re-sent on a fresh connection mid-stream.
        self.replays = 0
        self._sock: socket.socket | None = None
        # Unread response frames of an abandoned stream() — drained before
        # the next request so connection reuse can never desync.
        self._pending_response = False
        # Set on framing-level failures: the connection cannot realign.
        self._broken = False
        # Bumped once per request sent; a stream() iterator holds the
        # epoch of its own request and refuses to read frames once a
        # later request has superseded it on this connection.
        self._request_epoch = 0
        #: Requests sent on this connection (workloads and stats probes).
        self.requests = 0
        #: Bytes written to / read from the socket, frame prefixes included.
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Content-addressing counters: full instance records shipped,
        #: structural diffs shipped instead of full records, and the
        #: approximate encoded bytes that refs/deltas saved.
        self.instances_shipped = 0
        self.deltas_shipped = 0
        self.bytes_saved = 0
        if retry is None:
            self._connect()
        else:
            # The first dial is a request like any other: a peer that is
            # briefly down (restarting member, router re-binding) costs
            # backoff, not an error.
            retry.call(self._connect, on_retry=self._count_retry)

    def _connect(self) -> None:
        self._sock = socket.create_connection((self._host, self._port),
                                              timeout=self._timeout)

    def _count_retry(self, exc: BaseException) -> None:
        self.retries += 1

    def _reconnect(self) -> None:
        """Drop the broken socket, dial fresh, reset alignment state."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        self._connect()
        self._pending_response = False
        self._broken = False
        self.reconnects += 1
        if self._on_reconnect is not None:
            self._on_reconnect()

    def close(self) -> None:
        """Close the connection.  Idempotent; safe after any error."""
        sock, self._sock = self._sock, None
        self._pending_response = False
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    @property
    def closed(self) -> bool:
        return self._sock is None

    def __enter__(self) -> "WorkloadClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _require_usable(self) -> None:
        if self._sock is None:
            raise RuntimeError("client is closed")
        if self._broken:
            raise ProtocolError(
                "connection is unrecoverable after a protocol error; "
                "open a new WorkloadClient")

    def _send(self, payload: object) -> None:
        try:
            self.bytes_sent += send_frame_blocking(self._sock, payload)
        except OSError:
            self._broken = True
            raise

    def _recv(self) -> object | None:
        """One counted frame; framing/socket failures break the client."""
        try:
            frame, n = recv_frame_counted(self._sock)
        except (ProtocolError, OSError):
            self._broken = True
            raise
        self.bytes_received += n
        return frame

    def _unrecoverable(self, message: str) -> ProtocolError:
        self._broken = True
        return ProtocolError(message)

    def _dead_transport(self, message: str) -> TransportError:
        """Like :meth:`_unrecoverable`, but the *byte stream* died (the
        peer vanished) rather than the protocol desyncing — retryable
        with a reconnect when a policy is configured."""
        self._broken = True
        return TransportError(message)

    @staticmethod
    def _server_error(frame: dict) -> Exception:
        """The exception for a server-reported ``error`` frame.

        Coded frames map to crisp types — ``deadline_exceeded`` to
        :class:`~repro.errors.DeadlineExceeded` (the server shed work
        this client stopped waiting for) — and everything else to
        :class:`~repro.serving.wire.RemoteError`, which is never
        retried: the peer *processed* the request and rejected it, so a
        replay would fail identically.
        """
        message = f"server error: {frame.get('message', 'unknown')}"
        error_code = frame.get("code")
        if error_code == "deadline_exceeded":
            return DeadlineExceeded(message)
        return RemoteError(message, code=error_code
                           if isinstance(error_code, str) else None)

    def _apply_io_timeout(self, deadline: "Deadline | None") -> None:
        """Cap the next blocking socket op at ``min(remaining, timeout)``.

        Raises :class:`~repro.errors.DeadlineExceeded` instead of
        issuing a blocking call with no budget left.
        """
        if deadline is None or self._sock is None:
            return
        self._sock.settimeout(deadline.io_timeout(self._timeout))

    # ------------------------------------------------------------------
    def _drain_pending_response(self) -> None:
        """Discard leftover frames of an abandoned earlier ``stream()``.

        Every response ends in a ``done`` or ``error`` frame, so reading
        up to the terminator realigns the connection; the discarded
        answers were for a request the caller walked away from.  The
        abandoned iterator is invalidated (epoch bump) so resuming it
        raises instead of stealing the new request's frames.
        """
        if self._pending_response:
            self._request_epoch += 1
        while self._pending_response:
            frame = self._recv()
            if frame is None:
                raise self._dead_transport("server closed mid-response")
            kind = frame.get("type") if isinstance(frame, dict) else None
            if kind in ("done", "error"):
                self._pending_response = False
            elif kind == "need_instances":
                # The abandoned request died mid-negotiation; an empty
                # put makes the server fail that request with an error
                # frame (read next), realigning the connection.
                self._send({"type": "put_instances", "instances": []})
            elif kind != "shard":
                raise self._unrecoverable(f"unexpected frame {frame!r}")

    # ------------------------------------------------------------------
    def _retrying(self, fn, state: RetryState,
                  deadline: "Deadline | None" = None):
        """Run ``fn`` under an in-progress retry budget, healing first.

        A broken transport is re-dialed *before* each attempt (the dial
        itself consumes budget on failure); ``state.backoff`` re-raises
        anything non-retryable or past the attempt budget, so this loop
        always terminates.
        """
        while True:
            if self._broken and self._sock is not None:
                try:
                    self._reconnect()
                except Exception as exc:  # noqa: BLE001 - reclassified
                    state.backoff(exc, deadline=deadline)
                    self.retries += 1
                    continue
            try:
                return fn()
            except Exception as exc:  # noqa: BLE001 - reclassified
                state.backoff(exc, deadline=deadline)
                self.retries += 1

    def _with_retry(self, fn, *, deadline: "Deadline | None" = None):
        """One public request under this client's policy (if any)."""
        if self._retry is None:
            return fn()
        return self._retrying(fn, self._retry.start(), deadline)

    def stream(self, workload: Workload, *,
               known_digests: set[str] | None = None,
               prefetch: bool = False,
               deadline: "Deadline | None" = None,
               ) -> Iterator[ShardAnswer]:
        """Send one workload; yield decoded shard answers as frames land.

        ``known_digests`` is the caller's registry of instance digests
        the server is believed to hold: matching instances ship as refs,
        a *mutated* instance whose pre-mutation digest is registered
        ships as a structural ``delta`` record, and digests shipped in
        full (or as applied deltas) are added to the registry after the
        send (optimistically — a wrong entry only ever costs the one
        ``need_instances`` round trip this method answers transparently).

        ``prefetch`` marks the workload as speculative: the server's
        prefetch ledger counts it as submitted and counts the matching
        later non-speculative items as hits (the ``prefetch`` block of
        :meth:`stats` / ``GET /stats``).

        The final ``done`` frame's shard count is cross-checked against
        the frames actually seen; an ``error`` frame raises
        :class:`~repro.serving.wire.ProtocolError` with the server's
        message.  Abandoning the iterator mid-stream is safe: the next
        request on this connection first drains the rest of the old
        response — and the abandoned iterator then raises
        :class:`~repro.serving.wire.ProtocolError` if resumed, rather
        than stealing the new request's frames.

        The request frame is sent **eagerly**, before this method
        returns — not on first iteration of the result.  Creating a
        stream therefore pins its position in the request order:
        interleaving ``stats()``/``put_instances()`` calls between
        ``stream(...)`` and its first ``next()`` cannot reorder requests
        or skew the :attr:`requests`/:attr:`instances_shipped` counters.

        With a retry policy configured, a transport death mid-stream is
        healed transparently: reconnect, **replay** the workload on the
        fresh connection (refs-only; ``need_instances`` re-ships the
        corpus if the server restarted empty), and filter out item
        positions already delivered — the caller still sees every
        position exactly once, in shard-completion order.
        """
        self._require_usable()
        if self._retry is None:
            codec = self._send_workload(workload, known_digests, prefetch,
                                        deadline)
            return self._stream_frames(codec, workload,
                                       self._request_epoch, deadline)
        state = self._retry.start()
        codec = self._retrying(
            lambda: self._send_workload(workload, known_digests, prefetch,
                                        deadline),
            state, deadline)
        return self._resilient_frames(codec, workload, known_digests,
                                      prefetch, deadline, state)

    def _send_workload(self, workload: Workload,
                       known_digests: set[str] | None, prefetch: bool,
                       deadline: "Deadline | None") -> WorkloadCodec:
        """Encode and eagerly send one workload frame; returns its codec."""
        self._drain_pending_response()
        codec = WorkloadCodec()
        payload = codec.encode_workload(workload,
                                        known_digests=known_digests)
        if prefetch:
            payload["prefetch"] = True
        self._apply_io_timeout(deadline)
        if deadline is not None:
            # The remaining budget travels with the request, so server-
            # side admission can shed shards nobody waits for anymore.
            payload["deadline_ms"] = deadline.ms()
        self._send(payload)
        self.requests += 1
        self._request_epoch += 1
        self._pending_response = True
        self.instances_shipped += len(codec.shipped_digests)
        self.deltas_shipped += len(codec.delta_digests)
        self.bytes_saved += codec.bytes_saved
        if known_digests is not None:
            known_digests.update(codec.shipped_digests)
            # Applied deltas leave the server holding the *new* digest;
            # a failed apply comes back as need_instances and re-ships
            # the full record mid-stream, so the entry stays truthful.
            known_digests.update(codec.delta_digests)
        return codec

    def _stream_frames(self, codec: WorkloadCodec, workload: Workload,
                       epoch: int, deadline: "Deadline | None" = None,
                       ) -> Iterator[ShardAnswer]:
        """The response-reading half of :meth:`stream` (lazy by nature)."""
        seen = 0
        try:
            while True:
                if self._request_epoch != epoch:
                    # A later request was sent on this connection; its
                    # drain consumed the rest of our response.  The
                    # connection itself is fine — only this iterator is
                    # dead.
                    raise ProtocolError(
                        "stream superseded by a later request on this "
                        "connection")
                self._apply_io_timeout(deadline)
                try:
                    frame = self._recv()
                except OSError as exc:
                    if deadline is not None and deadline.expired:
                        # The tightened socket timeout fired *because*
                        # the budget ran out: surface the deadline, not
                        # the socket plumbing underneath it.
                        raise DeadlineExceeded(
                            "request deadline expired while awaiting "
                            "response frames") from exc
                    raise
                if frame is None:
                    raise self._dead_transport("server closed mid-response")
                kind = frame.get("type") if isinstance(frame, dict) else None
                if kind == "shard":
                    seen += 1
                    yield codec.decode_shard_answer(workload, frame)
                elif kind == "need_instances":
                    # The server evicted digests we sent as refs; re-ship
                    # those full records and keep reading — answers follow.
                    digests = frame.get("digests", ())
                    try:
                        payload = codec.encode_put_instances(digests)
                    except ProtocolError as exc:
                        # A digest this request never encoded: peer bug.
                        # The server is left awaiting a put we cannot
                        # produce, so the connection cannot realign —
                        # fail fast instead of letting the next request
                        # hang on the drain.
                        raise self._unrecoverable(
                            f"server requested unknown digests: "
                            f"{exc}") from exc
                    self._send(payload)
                    self.instances_shipped += len(digests)
                    self.bytes_saved -= sum(
                        instance_fingerprint(codec.instance_for(d))[1]
                        for d in digests)
                elif kind == "done":
                    self._pending_response = False
                    if frame.get("n_shards") != seen:
                        raise self._unrecoverable(
                            f"server announced {frame.get('n_shards')} "
                            f"shards but sent {seen}")
                    self._last_executor = frame.get("executor", "remote")
                    return
                elif kind == "error":
                    self._pending_response = False
                    raise self._server_error(frame)
                else:
                    raise self._unrecoverable(f"unexpected frame {frame!r}")
        finally:
            if deadline is not None and self._sock is not None \
                    and not self._broken:
                # Deadlines tighten the socket timeout per-operation;
                # leave the connection at its static default for the
                # next (deadline-less) request.
                self._sock.settimeout(self._timeout)

    def _resilient_frames(self, codec: WorkloadCodec, workload: Workload,
                          known_digests: set[str] | None, prefetch: bool,
                          deadline: "Deadline | None", state: RetryState,
                          ) -> Iterator[ShardAnswer]:
        """The replaying response reader behind a retry-enabled stream.

        Safe because evaluation is pure and instances are content-
        addressed: re-sending the workload re-evaluates identically, and
        ``delivered`` keeps the exactly-once answer contract — replayed
        shard answers are filtered down to positions the caller has not
        seen yet (a replayed shard with nothing new is dropped whole).
        """
        delivered: set[int] = set()
        epoch = self._request_epoch
        while True:
            try:
                for shard_answer in self._stream_frames(
                        codec, workload, epoch, deadline):
                    fresh_positions: list[int] = []
                    fresh_answers: list[object] = []
                    for position, answer in shard_answer:
                        if position in delivered:
                            continue
                        delivered.add(position)
                        fresh_positions.append(position)
                        fresh_answers.append(answer)
                    if fresh_positions:
                        yield ShardAnswer(shard_answer.shard,
                                          tuple(fresh_positions),
                                          tuple(fresh_answers))
                return
            except Exception as exc:  # noqa: BLE001 - reclassified
                state.backoff(exc, deadline=deadline)
                self.retries += 1
            codec = self._retrying(
                lambda: self._send_workload(workload, known_digests,
                                            prefetch, deadline),
                state, deadline)
            epoch = self._request_epoch
            self.replays += 1

    def put_instances(self, instances: Sequence[object], *,
                      known_digests: set[str] | None = None) -> list[str]:
        """Pre-ship instances to the server's content-addressed store.

        One ``put_instances`` request, acknowledged by an ``ok`` frame;
        returns the digests shipped and records them in
        ``known_digests`` so later workloads send refs immediately.
        Idempotent (the store is content-addressed), so a retry policy
        replays it wholesale after a transport failure.
        """
        self._require_usable()
        return self._with_retry(
            lambda: self._put_instances_once(instances,
                                             known_digests=known_digests))

    def _put_instances_once(self, instances: Sequence[object], *,
                            known_digests: set[str] | None = None,
                            ) -> list[str]:
        self._drain_pending_response()
        codec = WorkloadCodec()
        digests: list[str] = []
        for instance in instances:
            digest = codec.register_instance(instance)
            if digest not in digests:
                digests.append(digest)
        payload = codec.encode_put_instances(digests)
        self._send(payload)
        self.requests += 1
        self.instances_shipped += len(digests)
        frame = self._recv()
        if frame is None:
            raise self._dead_transport("server closed mid-response")
        kind = frame.get("type") if isinstance(frame, dict) else None
        if kind == "error":
            raise self._server_error(frame)
        if kind != "ok":
            raise self._unrecoverable(f"unexpected frame {frame!r}")
        if known_digests is not None:
            known_digests.update(digests)
        return digests

    def push_deltas(self, instances: Sequence[object], *,
                    known_digests: set[str]) -> dict:
        """Ship mutated instances forward as structural diffs.

        For every instance whose *current* digest the server does not
        hold but whose edit log reaches back to a digest in
        ``known_digests``, one ``delta`` record goes out on a single
        ``delta`` frame; diffs the server cannot apply (base evicted,
        log too old) are re-shipped as full records in one follow-up
        ``put_instances``.  ``known_digests`` ends up containing every
        instance's current digest either way.  Returns ``{"applied":
        [...], "reshipped": [...], "already_known": [...]}``.

        Retry-safe: a replay whose deltas were already applied finds
        their bases rekeyed away and gets those digests back in
        ``missing``, so they re-ship as full records — degradation,
        never failure.
        """
        self._require_usable()
        return self._with_retry(
            lambda: self._push_deltas_once(instances,
                                           known_digests=known_digests))

    def _push_deltas_once(self, instances: Sequence[object], *,
                          known_digests: set[str]) -> dict:
        self._drain_pending_response()
        codec = WorkloadCodec()
        records: list[dict] = []
        full: list[str] = []
        already: list[str] = []
        seen: set[str] = set()
        for instance in instances:
            digest = codec.register_instance(instance)
            if digest in seen:
                continue
            seen.add(digest)
            if digest in known_digests:
                already.append(digest)
                continue
            _, size = instance_fingerprint(instance)
            delta = delta_record_for(instance, digest, size, known_digests)
            if delta is None:
                full.append(digest)
                continue
            records.append(delta)
            self.bytes_saved += size - record_digest(delta)[1]
        applied: list[str] = []
        if records:
            reply = self._request_reply_once(
                codec.encode_delta_frame(records), expect="ok")
            self.deltas_shipped += len(records)
            applied = [d for d in reply.get("applied", ())
                       if isinstance(d, str)]
            for digest in reply.get("missing", ()):
                if isinstance(digest, str) and digest not in full:
                    full.append(digest)
                    self.bytes_saved -= instance_fingerprint(
                        codec.instance_for(digest))[1]
        if full:
            self._send(codec.encode_put_instances(full))
            self.requests += 1
            self.instances_shipped += len(full)
            frame = self._recv()
            if frame is None:
                raise self._dead_transport("server closed mid-response")
            kind = frame.get("type") if isinstance(frame, dict) else None
            if kind == "error":
                raise self._server_error(frame)
            if kind != "ok":
                raise self._unrecoverable(f"unexpected frame {frame!r}")
        known_digests.update(applied)
        known_digests.update(full)
        return {"applied": applied, "reshipped": full,
                "already_known": already}

    def stats(self) -> dict:
        """The server's live engine statistics (one ``stats`` round trip).

        Returns the server's reply — ``{"executor": ..., "engine":
        {...}}`` with the engine dict exactly as
        :meth:`repro.engine.core.Engine.stats` reports it server-side
        (cache hit rates, index build counts).
        """
        return self._request_reply({"type": "stats"}, expect="stats")

    def _request_reply(self, payload: dict, *, expect: str,
                       deadline: "Deadline | None" = None) -> dict:
        """One request frame, one reply frame of kind ``expect``.

        Shared by every non-streaming request (``stats`` and the fleet
        control frames), retried under the client's policy when one is
        configured.  A server ``error`` frame raises
        :class:`~repro.serving.wire.RemoteError` but leaves the
        connection aligned; any other unexpected frame breaks it.
        """
        self._require_usable()
        return self._with_retry(
            lambda: self._request_reply_once(payload, expect=expect,
                                             deadline=deadline),
            deadline=deadline)

    def _request_reply_once(self, payload: dict, *, expect: str,
                            deadline: "Deadline | None" = None) -> dict:
        self._drain_pending_response()
        self._apply_io_timeout(deadline)
        try:
            self._send(payload)
            self.requests += 1
            try:
                frame = self._recv()
            except OSError as exc:
                if deadline is not None and deadline.expired:
                    raise DeadlineExceeded(
                        "request deadline expired while awaiting "
                        "reply") from exc
                raise
        finally:
            if deadline is not None and self._sock is not None \
                    and not self._broken:
                self._sock.settimeout(self._timeout)
        if frame is None:
            raise self._dead_transport("server closed mid-response")
        kind = frame.get("type") if isinstance(frame, dict) else None
        if kind == expect:
            return {k: v for k, v in frame.items() if k != "type"}
        if kind == "error":
            raise self._server_error(frame)
        raise self._unrecoverable(f"unexpected frame {frame!r}")

    # ------------------------------------------------------------------
    # Fleet control plane.  A plain WorkloadServer answers ping/drain/
    # undrain too (ring is router-only), so health checks and rolling
    # restarts work the same against one server or a whole fleet.
    def ping(self) -> dict:
        """Liveness probe; the reply carries the endpoint's drain state."""
        return self._request_reply({"type": "ping"}, expect="ok")

    def drain(self, member: str | None = None) -> dict:
        """Graceful drain.  Against a :class:`WorkloadServer`, stop
        accepting new connections (existing ones finish).  Against a
        router with ``member=<id>``, take that fleet member out of the
        ring — in-flight work finishes, new work rehashes elsewhere."""
        payload: dict = {"type": "drain"}
        if member is not None:
            payload["member"] = member
        return self._request_reply(payload, expect="ok")

    def undrain(self, member: str | None = None) -> dict:
        """Reverse :meth:`drain`: resume accepting (or re-ring a member)."""
        payload: dict = {"type": "undrain"}
        if member is not None:
            payload["member"] = member
        return self._request_reply(payload, expect="ok")

    def ring(self) -> dict:
        """A router's ring report: members, health, and digest counts."""
        return self._request_reply({"type": "ring"}, expect="ring")

    def run(self, workload: Workload, *,
            known_digests: set[str] | None = None,
            prefetch: bool = False,
            deadline: "Deadline | None" = None) -> WorkloadResult:
        """Remote evaluation with the deterministic position-aligned merge."""
        answers: list = [None] * len(workload)
        n_shards = 0
        for shard_answer in self.stream(workload,
                                        known_digests=known_digests,
                                        prefetch=prefetch,
                                        deadline=deadline):
            n_shards += 1
            for position, answer in shard_answer:
                answers[position] = answer
        executor = getattr(self, "_last_executor", "remote")
        return WorkloadResult(workload, tuple(answers),
                              f"remote:{executor}", n_shards)
