"""The asyncio facade over the batch-evaluation service.

:class:`AsyncBatchEvaluator` accepts the same :class:`~repro.serving.workload.Workload`
objects as the synchronous :class:`~repro.serving.evaluator.BatchEvaluator`
and schedules the same per-shard work on the same pluggable executors —
but from inside an event loop, without ever blocking it on evaluation:

* pooled executors (thread / process) are driven through
  ``executor.submit``; the resulting :class:`concurrent.futures.Future`
  is bridged into the loop with :func:`asyncio.wrap_future`;
* non-pooled executors (serial, or any custom ``map``-only executor)
  would run the shard inline on the caller's thread, so their submission
  is offloaded to the loop's default thread pool via
  ``loop.run_in_executor`` instead.

:meth:`AsyncBatchEvaluator.stream` is the primitive: an async generator
yielding :class:`~repro.serving.workload.ShardAnswer` records in
*completion* order, with at most ``executor.parallelism()`` shards in
flight (lazy submission — a serial executor therefore yields its first
shard before later shards have even started).  :meth:`AsyncBatchEvaluator.run`
consumes the stream and reassembles the deterministic position-aligned
:class:`~repro.serving.workload.WorkloadResult`, so ``await run(w)`` is
answer-identical — same node objects, same order — to the synchronous
``BatchEvaluator.run(w)`` on the same executor.

This is the seam the network front-end (:mod:`repro.serving.net`) serves:
one TCP connection's workloads become one evaluator stream each, and
per-shard answers go out as frames the moment they exist.
"""

from __future__ import annotations

import asyncio
from collections.abc import AsyncIterator, Sequence

from repro.engine import Engine
from repro.serving.evaluator import BatchEvaluator
from repro.serving.executors import ShardExecutor
from repro.serving.workload import ShardAnswer, Workload, WorkloadResult
from repro.twig.ast import TwigQuery
from repro.xmltree.tree import XNode, XTree


class AsyncBatchEvaluator:
    """Evaluate workloads on the executor seam from inside an event loop."""

    def __init__(self, *, engine: Engine | None = None,
                 executor: ShardExecutor | None = None,
                 evaluator: BatchEvaluator | None = None) -> None:
        if evaluator is not None:
            if engine is not None or executor is not None:
                raise ValueError(
                    "pass either a ready BatchEvaluator or engine/executor "
                    "parts, not both")
            self._sync = evaluator
        else:
            self._sync = BatchEvaluator(engine=engine, executor=executor)

    @property
    def engine(self) -> Engine:
        return self._sync.engine

    @property
    def executor(self) -> ShardExecutor:
        return self._sync.executor

    @property
    def sync(self) -> BatchEvaluator:
        """The synchronous evaluator this facade schedules through."""
        return self._sync

    # ------------------------------------------------------------------
    # The streaming primitive
    # ------------------------------------------------------------------
    async def stream(self, workload: Workload, *, gate=None,
                     positions_native: bool = False,
                     ) -> AsyncIterator[ShardAnswer]:
        """Yield per-shard answers as they complete, loop never blocked.

        ``positions_native=True`` keeps twig answers as pre-order
        position tuples (see
        :meth:`~repro.serving.evaluator.BatchEvaluator.run_stream`) — the
        network server streams in this mode and encodes the positions
        straight into shard frames, never materialising node objects
        server-side.

        Completion order is scheduling-dependent; the payloads are not —
        each :class:`~repro.serving.workload.ShardAnswer` carries its item
        positions, and reassembling by position reproduces the
        synchronous batch answers exactly (the evaluator's parity and
        snapshot contracts hold unchanged, including the isolated path's
        refuse-to-decode-across-versions guard).

        ``gate`` is an optional admission limiter (``await acquire()`` /
        ``release()``, FIFO — the server's shard-admission semaphore):
        one slot is held per in-flight shard, acquired *before*
        submission so an over-limit workload queues instead of erroring.
        Each task releases its slot through a done-callback the moment
        it finishes (success, failure, or cancellation) — never from
        this consumer loop, which may itself be waiting on a slot while
        earlier shards complete: releasing from the loop would deadlock
        the whole server whenever the executor is wider than the gate.
        The pending acquisition is *raced* against shard completions,
        so a queued submission never delays the yield of an answer that
        already exists — gating bounds concurrency, not streaming
        latency.  Abandonment cancels the in-flight tasks (and releases
        an acquired-but-unused slot), so a dead request cannot leak
        admission slots.
        """
        shards = workload.shards()
        if not shards:
            return
        submit, decode = self._sync._shard_plan(
            shards, positions_native=positions_native)
        width = max(1, self.executor.parallelism())
        loop = asyncio.get_running_loop()
        pooled = self.executor.pooled

        async def run_one(i: int) -> tuple[int, tuple]:
            if pooled:
                raw = await asyncio.wrap_future(submit(i))
            else:
                # Inline executors evaluate inside submit(); keep that off
                # the event loop thread.
                future = await loop.run_in_executor(None, submit, i)
                # repro: allow[async-purity] inline executors complete the
                # future inside submit() itself, which just ran to the end
                # in the executor thread — result() is an immediate read.
                raw = future.result()
            return i, decode(i, raw)

        def launch(i: int) -> asyncio.Task:
            task = asyncio.ensure_future(run_one(i))
            if gate is not None:
                task.add_done_callback(lambda _t: gate.release())
            return task

        in_flight: set[asyncio.Task] = set()
        acquiring: asyncio.Task | None = None
        next_shard = 0
        try:
            while next_shard < len(shards) or in_flight or acquiring:
                if next_shard < len(shards) and len(in_flight) < width \
                        and acquiring is None:
                    if gate is None:
                        in_flight.add(launch(next_shard))
                        next_shard += 1
                        continue
                    acquiring = asyncio.ensure_future(gate.acquire())
                wait_for = in_flight | ({acquiring} if acquiring else set())
                done, _ = await asyncio.wait(
                    wait_for, return_when=asyncio.FIRST_COMPLETED)
                if acquiring is not None and acquiring.done():
                    done.discard(acquiring)
                    # repro: allow[async-purity] the task is .done(); this
                    # result() cannot wait, it only surfaces failures.
                    acquiring.result()
                    acquiring = None
                    in_flight.add(launch(next_shard))
                    next_shard += 1
                for task in done:
                    in_flight.discard(task)
                    # repro: allow[async-purity] asyncio.wait returned the
                    # task in its done set — result() is an immediate read.
                    i, answers = task.result()
                    yield ShardAnswer(i, shards[i].indices, answers)
        finally:
            if acquiring is not None and not acquiring.cancel() \
                    and not acquiring.cancelled() \
                    and acquiring.exception() is None:
                # The slot was acquired but its shard never launched.
                gate.release()
            for task in in_flight:
                task.cancel()

    # ------------------------------------------------------------------
    # Batch shapes on top of the stream
    # ------------------------------------------------------------------
    async def run(self, workload: Workload) -> WorkloadResult:
        """Deterministic ordered merge of the stream (parity with sync)."""
        answers: list = [None] * len(workload)
        n_shards = 0
        async for shard_answer in self.stream(workload):
            n_shards += 1
            for position, answer in shard_answer:
                answers[position] = answer
        return WorkloadResult(workload, tuple(answers), self.executor.name,
                              n_shards)

    async def evaluate_twig_batch(
        self, query: TwigQuery, documents: Sequence[XTree],
    ) -> list[list[XNode]]:
        """One hypothesis over many documents (async form)."""
        return list((await self.run(Workload.twig(query, documents))).answers)

    async def first_answer(self, workload: Workload) -> ShardAnswer:
        """The earliest completed shard (the streamed-latency probe).

        Remaining in-flight shards are cancelled where possible; answers
        already computed are simply discarded.
        """
        stream = self.stream(workload)
        try:
            async for shard_answer in stream:
                return shard_answer
        finally:
            await stream.aclose()
        raise ValueError("workload has no shards")

    def __repr__(self) -> str:
        return f"<AsyncBatchEvaluator executor={self.executor.name}>"
