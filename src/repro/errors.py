"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base class.  Sub-classes partition the failure modes by
subsystem: parsing concrete syntax, schema violations, inconsistent example
sets, learning failures, and query-evaluation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ParseError(ReproError):
    """Malformed concrete syntax (XML documents, twig queries, regexes...).

    Carries the offending text position when available.
    """

    def __init__(self, message: str, *, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class SchemaError(ReproError):
    """Ill-formed schema definition (e.g. a label in two disjunction atoms)."""


class SchemaViolation(ReproError):
    """A document/tuple does not conform to the schema it was checked against."""


class InconsistentExamplesError(ReproError):
    """No query in the target class is consistent with the labelled examples."""


class LearningError(ReproError):
    """The learner could not produce a hypothesis (other than inconsistency)."""


class EvaluationError(ReproError):
    """A query could not be evaluated against an instance."""


class RelationalError(ReproError):
    """Schema mismatches and malformed operations in the relational engine."""


class DeadlineExceeded(ReproError):
    """A per-request time budget ran out before the request completed.

    Raised client-side when a :class:`repro.serving.resilience.Deadline`
    expires mid-request, and server-side (then surfaced as a coded
    ``error`` frame) when admission control sheds work whose deadline
    already passed.  Never retried: the time the retry would need is
    exactly what ran out.
    """


class ServiceUnavailable(ReproError):
    """The serving tier is unreachable after bounded recovery attempts.

    The crisp fail-fast error of the client edge: retries exhausted, or
    a :class:`repro.serving.resilience.CircuitBreaker` is open after
    consecutive failures.  Callers can catch this one class to implement
    degraded modes without fishing through socket errors.
    """


class GraphError(ReproError):
    """Malformed graph operations (unknown vertices, bad labels...)."""
