"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` for PEP 660 editable installs; this
shim lets ``python setup.py develop`` (and legacy pip fallback) work in the
offline environment.  All package metadata — name, version, and the
``src/`` package-dir mapping — lives in ``pyproject.toml``; setuptools
reads it from there, so the bare ``setup()`` call now installs a usable
``repro`` package.
"""
from setuptools import setup

setup()
