"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` for PEP 660 editable installs; this
shim lets ``python setup.py develop`` (and legacy pip fallback) work in the
offline environment.
"""
from setuptools import setup

setup()
